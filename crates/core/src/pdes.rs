//! The three-dimensional Multicube as a conservatively parallel
//! simulation, sharded by plane or by column-bus domain.
//!
//! Section 6 of the paper generalizes the Wisconsin Multicube to `n^k`
//! processors; the `k = 3` instance is a cube of `n` *planes*, each an
//! `n x n` grid identical to the 2-D machine, with a third set of "depth"
//! buses connecting each processor to its images in every other plane.
//! This module simulates that machine at scale by giving every plane its
//! own full [`Machine`] — the complete Appendix A protocol, its own event
//! wheel, its own deterministic RNG stream — and running the cube as
//! shards of a conservative parallel DES ([`multicube_sim::pdes`]).
//!
//! Two shard granularities share one traffic model
//! ([`CubeShards`], the two levels of [`multicube_topology::TwoLevelMap`]):
//!
//! * **Plane** — `n` shards, one full plane each (the PR 8 cut). Only the
//!   depth buses cross shards.
//! * **Column** — `n^2` shards, one *column-bus domain* per shard. In the
//!   paper, memory modules attach to the column buses (§2), so every
//!   remote-accessible word has a home column; both the depth hop *and*
//!   the intra-plane grid-bus hops then cross shards, and the lookahead is
//!   one grid-bus transfer ([`GRID_HOP_NS`]).
//!
//! Cross-plane traffic models the §4 uncached-remote access pattern as a
//! four-hop pipeline through per-column [`ColumnCell`]s: a requester
//! column issues over its depth bus to the home plane ([`HOP_NS`]), the
//! request transits the home plane's row bus to the line's home column
//! ([`GRID_HOP_NS`]) unless it already landed there, the column's FIFO
//! memory port services it at [`SERVICE_NS`], and the reply retraces the
//! path. TEST-AND-SET / CLEAR operate on the home column's memory word
//! (lock bit plus a release epoch in the upper bits), READ returns it
//! uncached — all state lives in the column cell, so the per-cell event
//! stream is independent of how cells are grouped into shards.
//!
//! Determinism: every machine seed and per-column traffic stream derives
//! from the cube seed by [`split_seed`], the scheduler delivers
//! cross-shard messages in `(time, source shard, sequence)` order, and
//! every cell keys same-instant events on the *operation's identity*
//! `(origin plane, origin column, op sequence)` — never on insertion
//! order — so regrouping deliveries across rounds (different granularity,
//! adaptive windows, any worker count) cannot reorder them. A cube run is
//! therefore byte-identical — per-plane machine traces included — across
//! shard granularity, executor, window policy, and worker count, which
//! `crates/core/tests/pdes_determinism.rs` pins.

use std::io::Write;
use std::sync::{Arc, Mutex};

use multicube_sim::pdes::{
    self, Arrival, ExecutorKind, Outbox, PdesConfig, PdesStats, ShardModel, WindowPolicy,
};
use multicube_sim::{split_seed, stream_id, DeterministicRng, FxHashMap, SimDuration, SimTime};
use multicube_topology::{Multicube, TwoLevelMap};

use crate::config::{EngineKind, MachineConfig};
use crate::driver::SyntheticSpec;
use crate::machine::Machine;
use crate::metrics::RunReport;
use crate::trace::{TraceFormat, TraceSink};

/// One depth-bus hop: the minimum cross-plane latency.
pub const HOP_NS: u64 = 10;

/// One intra-plane grid-bus hop: the minimum cross-column latency, and
/// therefore the conservative lookahead at column granularity.
pub const GRID_HOP_NS: u64 = 10;

/// Fixed service time of a column's memory port (one uncached memory-side
/// access, no cache fill).
pub const SERVICE_NS: u64 = 120;

/// Shard granularity of a cube run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CubeShards {
    /// One shard per plane: `n` shards, depth buses cross shards.
    #[default]
    Plane,
    /// One shard per column-bus domain: `n^2` shards, depth *and* grid
    /// buses cross shards.
    Column,
}

/// Environment override selecting the shard granularity.
pub const SHARDS_ENV: &str = "MULTICUBE_PDES_SHARDS";

impl CubeShards {
    /// Parses an override value: `None` means "not set", anything else
    /// must be exactly `plane` or `column` (whitespace trimmed).
    ///
    /// # Panics
    ///
    /// Panics on any other value — same loud contract as
    /// `MULTICUBE_POOL_WORKERS`: a typo must not silently fall back to
    /// the default granularity.
    pub fn from_override(raw: Option<&str>) -> Option<Self> {
        let raw = raw?;
        match raw.trim() {
            "plane" => Some(CubeShards::Plane),
            "column" => Some(CubeShards::Column),
            bad => panic!("{SHARDS_ENV} must be \"plane\" or \"column\", got {bad:?}"),
        }
    }

    /// Reads [`SHARDS_ENV`], with [`Self::from_override`]'s contract.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var(SHARDS_ENV).ok();
        Self::from_override(raw.as_deref())
    }

    /// The override spelling, for reports and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            CubeShards::Plane => "plane",
            CubeShards::Column => "column",
        }
    }
}

/// A remote (cross-plane) operation kind — the §4 uncached accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteKind {
    /// Uncached read of the home column's memory word.
    Read,
    /// Test-and-set on the word's lock bit.
    TestAndSet,
    /// Clear (release) of the lock bit, bumping the release epoch.
    Clear,
}

impl RemoteKind {
    fn code(self) -> u64 {
        match self {
            RemoteKind::Read => 0,
            RemoteKind::TestAndSet => 1,
            RemoteKind::Clear => 2,
        }
    }
}

/// A message on a depth or grid bus. Every variant carries the issuing
/// operation's full identity `(origin_plane, origin_col, op_seq)`: the
/// receiving cell keys the induced event on it, which is what makes the
/// event order content-addressed and granularity-invariant.
#[derive(Debug, Clone, Copy)]
pub enum DepthMsg {
    /// A remote op crossing the depth bus to its home plane (lands at the
    /// origin's column image there).
    Request {
        origin_plane: u32,
        origin_col: u32,
        op_seq: u64,
        line: u64,
        kind: RemoteKind,
    },
    /// The op transiting the home plane's row bus to the line's home
    /// column.
    RequestTransit {
        origin_plane: u32,
        origin_col: u32,
        op_seq: u64,
        line: u64,
        kind: RemoteKind,
    },
    /// The reply transiting the home plane's row bus back to the origin
    /// column's image.
    ReplyTransit {
        origin_plane: u32,
        origin_col: u32,
        op_seq: u64,
        value: u64,
        success: bool,
    },
    /// The reply crossing the depth bus back to the origin.
    Reply {
        origin_col: u32,
        op_seq: u64,
        value: u64,
        success: bool,
    },
}

/// Internal events of one column cell, ordered by `(time, class, op key)`
/// — the class keeps arrivals ahead of issues at equal instants, and the
/// op key (the operation's identity) fixes same-instant order by content.
#[derive(Debug, Clone, Copy)]
enum CellEv {
    /// The open-loop generator fires: issue one remote op.
    Issue,
    /// A request landed off the depth bus at the origin's column image on
    /// the home plane.
    Entry {
        origin_plane: u32,
        op_seq: u64,
        line: u64,
        kind: RemoteKind,
    },
    /// A forwarded request reached the line's home column.
    PortArrival {
        origin_plane: u32,
        origin_col: u32,
        op_seq: u64,
        line: u64,
        kind: RemoteKind,
    },
    /// The memory port finishes servicing (perform the op, start the
    /// reply on its way).
    ServiceDone {
        origin_plane: u32,
        origin_col: u32,
        op_seq: u64,
        line: u64,
        kind: RemoteKind,
    },
    /// A reply reached the origin column's image on the home plane,
    /// about to cross the depth bus.
    Exit {
        origin_plane: u32,
        op_seq: u64,
        value: u64,
        success: bool,
    },
    /// A reply arrived back at the requesting cell.
    ReplyArrival {
        op_seq: u64,
        value: u64,
        success: bool,
    },
}

/// Message-driven events; at equal instants these run before issues.
const CLASS_MSG: u8 = 0;
/// Generator firings.
const CLASS_ISSUE: u8 = 1;

/// The content key of an operation: its issuing cell and sequence number.
/// `side <= 128` and `op_seq` stays far below `2^48`, so the packing is
/// collision-free.
fn op_key(origin_plane: u32, origin_col: u32, op_seq: u64) -> u64 {
    ((origin_plane as u64) << 56) | ((origin_col as u64) << 48) | op_seq
}

/// Aggregate depth-traffic statistics (all integers, so the quick-mode
/// artifacts that CI diffs stay exactly reproducible).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepthStats {
    /// Remote ops issued.
    pub issued: u64,
    /// Requests serviced for others.
    pub serviced: u64,
    /// Replies received.
    pub replies: u64,
    /// TEST-AND-SET attempts that won the word.
    pub tas_won: u64,
    /// Total round-trip latency over all replies (ns).
    pub latency_total_ns: u64,
    /// Worst round-trip latency (ns).
    pub latency_max_ns: u64,
}

impl DepthStats {
    fn merge(&mut self, other: &DepthStats) {
        self.issued += other.issued;
        self.serviced += other.serviced;
        self.replies += other.replies;
        self.tas_won += other.tas_won;
        self.latency_total_ns += other.latency_total_ns;
        self.latency_max_ns = self.latency_max_ns.max(other.latency_max_ns);
    }
}

/// A shared append-only byte sink for per-plane machine traces.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One column-bus domain of one plane: the open-loop remote-traffic
/// generator for that column's processors, the column's memory module
/// (the words remote ops target), and its FIFO memory port. All
/// depth-traffic state lives here — never in the plane's [`Machine`] — so
/// a cell behaves identically whether its shard holds one cell (column
/// granularity) or a whole plane's worth.
struct ColumnCell {
    plane: usize,
    col: usize,
    side: usize,
    rng: DeterministicRng,
    pending: std::collections::BTreeMap<(SimTime, u8, u64), CellEv>,
    /// Remote ops the generator has yet to issue.
    issues_left: u64,
    /// Next op sequence number this cell issues.
    op_seq: u64,
    remote_gap_ns: f64,
    remote_lines: u64,
    /// When the FIFO memory port next frees up.
    port_free_at: SimTime,
    /// This column's memory words: bit 0 is the TAS lock, the bits above
    /// count CLEAR releases. Only lines with `line % side == col` live
    /// here.
    words: FxHashMap<u64, u64>,
    /// In-flight remote ops this cell issued: op_seq -> issue time.
    outstanding: FxHashMap<u64, SimTime>,
    stats: DepthStats,
    /// Order-sensitive digest of every event this cell observed.
    digest: u64,
}

impl ColumnCell {
    fn schedule(&mut self, at: SimTime, class: u8, key: u64, ev: CellEv) {
        let clobbered = self.pending.insert((at, class, key), ev);
        assert!(
            clobbered.is_none(),
            "cell ({}, {}): event key collision at {at}",
            self.plane,
            self.col
        );
    }

    fn fold(&mut self, at: SimTime, vals: [u64; 3]) {
        for v in [at.as_nanos(), vals[0], vals[1], vals[2]] {
            self.digest = self
                .digest
                .rotate_left(13)
                .wrapping_mul(0x100000001B3)
                .wrapping_add(v);
        }
    }

    /// The line's home column on any plane.
    fn home_col(&self, line: u64) -> usize {
        (line % self.side as u64) as usize
    }

    fn enqueue_port(
        &mut self,
        at: SimTime,
        origin_plane: u32,
        origin_col: u32,
        op_seq: u64,
        line: u64,
        kind: RemoteKind,
    ) {
        let start = self.port_free_at.max(at);
        let done = start + SimDuration::from_nanos(SERVICE_NS);
        self.port_free_at = done;
        self.schedule(
            done,
            CLASS_MSG,
            op_key(origin_plane, origin_col, op_seq),
            CellEv::ServiceDone {
                origin_plane,
                origin_col,
                op_seq,
                line,
                kind,
            },
        );
    }

    /// Handles one cell event at instant `at`. Emitted messages are
    /// addressed `(plane, column)`; the owning shard decides whether each
    /// is a local schedule or a cross-shard send.
    fn handle(
        &mut self,
        at: SimTime,
        ev: CellEv,
        emit: &mut impl FnMut(usize, usize, SimTime, DepthMsg),
    ) {
        match ev {
            CellEv::Issue => {
                let home_plane = self
                    .rng
                    .below_excluding(self.side as u64, self.plane as u64)
                    as usize;
                let line = self.rng.below(self.remote_lines);
                let kind = match self.rng.below(10) {
                    0..=5 => RemoteKind::Read,
                    6..=8 => RemoteKind::TestAndSet,
                    _ => RemoteKind::Clear,
                };
                let op_seq = self.op_seq;
                self.op_seq += 1;
                self.stats.issued += 1;
                self.outstanding.insert(op_seq, at);
                self.fold(at, [0, op_seq, (home_plane as u64) << 32 | line]);
                emit(
                    home_plane,
                    self.col,
                    at + SimDuration::from_nanos(HOP_NS),
                    DepthMsg::Request {
                        origin_plane: self.plane as u32,
                        origin_col: self.col as u32,
                        op_seq,
                        line,
                        kind,
                    },
                );
                self.issues_left -= 1;
                if self.issues_left > 0 {
                    let gap = 1 + self.rng.exponential(self.remote_gap_ns).max(0.0) as u64;
                    self.schedule(
                        at + SimDuration::from_nanos(gap),
                        CLASS_ISSUE,
                        op_key(self.plane as u32, self.col as u32, self.op_seq),
                        CellEv::Issue,
                    );
                }
            }
            CellEv::Entry {
                origin_plane,
                op_seq,
                line,
                kind,
            } => {
                self.fold(at, [1, (origin_plane as u64) << 32 | op_seq, line]);
                let home = self.home_col(line);
                if home == self.col {
                    // Landed directly on the home column: straight to the
                    // memory port.
                    self.enqueue_port(at, origin_plane, self.col as u32, op_seq, line, kind);
                } else {
                    emit(
                        self.plane,
                        home,
                        at + SimDuration::from_nanos(GRID_HOP_NS),
                        DepthMsg::RequestTransit {
                            origin_plane,
                            origin_col: self.col as u32,
                            op_seq,
                            line,
                            kind,
                        },
                    );
                }
            }
            CellEv::PortArrival {
                origin_plane,
                origin_col,
                op_seq,
                line,
                kind,
            } => {
                self.fold(at, [5, (origin_plane as u64) << 32 | op_seq, line]);
                self.enqueue_port(at, origin_plane, origin_col, op_seq, line, kind);
            }
            CellEv::ServiceDone {
                origin_plane,
                origin_col,
                op_seq,
                line,
                kind,
            } => {
                let (value, success) = match kind {
                    RemoteKind::Read => (self.words.get(&line).copied().unwrap_or(0), true),
                    RemoteKind::TestAndSet => {
                        let word = self.words.entry(line).or_insert(0);
                        let old = *word;
                        if old & 1 == 0 {
                            *word |= 1;
                        }
                        (old, old & 1 == 0)
                    }
                    RemoteKind::Clear => {
                        let word = self.words.entry(line).or_insert(0);
                        let old = *word;
                        // Drop the lock bit, bump the release epoch: later
                        // READs observe the history of releases.
                        *word = (old & !1).wrapping_add(2);
                        (old, true)
                    }
                };
                self.stats.serviced += 1;
                self.fold(at, [2, kind.code() << 32 | op_seq, value]);
                if origin_col as usize == self.col {
                    emit(
                        origin_plane as usize,
                        origin_col as usize,
                        at + SimDuration::from_nanos(HOP_NS),
                        DepthMsg::Reply {
                            origin_col,
                            op_seq,
                            value,
                            success,
                        },
                    );
                } else {
                    emit(
                        self.plane,
                        origin_col as usize,
                        at + SimDuration::from_nanos(GRID_HOP_NS),
                        DepthMsg::ReplyTransit {
                            origin_plane,
                            origin_col,
                            op_seq,
                            value,
                            success,
                        },
                    );
                }
            }
            CellEv::Exit {
                origin_plane,
                op_seq,
                value,
                success,
            } => {
                self.fold(at, [4, op_seq, value]);
                emit(
                    origin_plane as usize,
                    self.col,
                    at + SimDuration::from_nanos(HOP_NS),
                    DepthMsg::Reply {
                        origin_col: self.col as u32,
                        op_seq,
                        value,
                        success,
                    },
                );
            }
            CellEv::ReplyArrival {
                op_seq,
                value,
                success,
            } => {
                let issued = self
                    .outstanding
                    .remove(&op_seq)
                    .expect("reply to an op never issued");
                let latency = (at - issued).as_nanos();
                self.stats.replies += 1;
                self.stats.tas_won += success as u64;
                self.stats.latency_total_ns += latency;
                self.stats.latency_max_ns = self.stats.latency_max_ns.max(latency);
                self.fold(at, [3, op_seq, value]);
            }
        }
    }

    /// Lower bound on the first *bus departure* this pending event can
    /// cause, as `(delivery time, crosses shards at plane granularity)`.
    /// `None` for terminal events.
    fn send_bound(&self, t: SimTime, ev: &CellEv) -> Option<(SimTime, bool)> {
        let ns = SimDuration::from_nanos;
        match ev {
            CellEv::Issue => Some((t + ns(HOP_NS), true)),
            CellEv::Entry { line, .. } => {
                if self.home_col(*line) == self.col {
                    Some((t + ns(SERVICE_NS + HOP_NS), true))
                } else {
                    // First departure is the grid transit; at plane
                    // granularity that is shard-local and the first
                    // *cross-shard* departure is the eventual depth reply.
                    Some((t + ns(GRID_HOP_NS), false))
                }
            }
            CellEv::PortArrival { origin_col, .. } | CellEv::ServiceDone { origin_col, .. } => {
                let service = match ev {
                    CellEv::PortArrival { .. } => SERVICE_NS,
                    _ => 0,
                };
                if *origin_col as usize == self.col {
                    Some((t + ns(service + HOP_NS), true))
                } else {
                    Some((t + ns(service + GRID_HOP_NS), false))
                }
            }
            CellEv::Exit { .. } => Some((t + ns(HOP_NS), true)),
            CellEv::ReplyArrival { .. } => None,
        }
    }
}

/// Decodes a bus message into the destination column and the cell event
/// it schedules there. Used identically for cross-shard deliveries and
/// shard-local forwarding, so both granularities construct the same
/// event with the same content key.
fn decode(msg: DepthMsg, side: usize) -> (usize, u8, u64, CellEv) {
    match msg {
        DepthMsg::Request {
            origin_plane,
            origin_col,
            op_seq,
            line,
            kind,
        } => (
            origin_col as usize,
            CLASS_MSG,
            op_key(origin_plane, origin_col, op_seq),
            CellEv::Entry {
                origin_plane,
                op_seq,
                line,
                kind,
            },
        ),
        DepthMsg::RequestTransit {
            origin_plane,
            origin_col,
            op_seq,
            line,
            kind,
        } => (
            (line % side as u64) as usize,
            CLASS_MSG,
            op_key(origin_plane, origin_col, op_seq),
            CellEv::PortArrival {
                origin_plane,
                origin_col,
                op_seq,
                line,
                kind,
            },
        ),
        DepthMsg::ReplyTransit {
            origin_plane,
            origin_col,
            op_seq,
            value,
            success,
        } => (
            origin_col as usize,
            CLASS_MSG,
            op_key(origin_plane, origin_col, op_seq),
            CellEv::Exit {
                origin_plane,
                op_seq,
                value,
                success,
            },
        ),
        DepthMsg::Reply {
            origin_col,
            op_seq,
            value,
            success,
        } => (
            origin_col as usize,
            CLASS_MSG,
            // The reply terminates at the issuing cell, whose plane is
            // the destination shard's plane — the key is completed there.
            op_seq,
            CellEv::ReplyArrival {
                op_seq,
                value,
                success,
            },
        ),
    }
}

/// One shard of the cube: a whole plane (machine + `n` cells) at plane
/// granularity, or one cell (plus the plane's machine parked on the
/// column-0 shard) at column granularity.
struct CubeShard {
    index: usize,
    granularity: CubeShards,
    side: usize,
    plane: usize,
    machine: Option<Machine>,
    /// This shard's cells in column order (length `side` or 1).
    cells: Vec<ColumnCell>,
    trace: Option<SharedBuf>,
}

impl CubeShard {
    fn target_shard(&self, plane: usize, col: usize) -> usize {
        match self.granularity {
            CubeShards::Plane => plane,
            CubeShards::Column => plane * self.side + col,
        }
    }

    fn cell_slot(&self, col: usize) -> usize {
        match self.granularity {
            CubeShards::Plane => col,
            CubeShards::Column => 0,
        }
    }

    fn deliver(&mut self, at: SimTime, msg: DepthMsg) {
        let (col, class, mut key, ev) = decode(msg, self.side);
        let slot = self.cell_slot(col);
        if let CellEv::ReplyArrival { op_seq, .. } = ev {
            // Complete the op key with the issuing cell's identity (this
            // cell — replies come home).
            key = op_key(self.cells[slot].plane as u32, col as u32, op_seq);
        }
        debug_assert_eq!(self.cells[slot].col, col, "message routed to wrong cell");
        self.cells[slot].schedule(at, class, key, ev);
    }
}

impl ShardModel for CubeShard {
    type Msg = DepthMsg;

    fn next_time(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = self.machine.as_ref().and_then(|m| m.next_event_time());
        for cell in &self.cells {
            if let Some(&(t, _, _)) = cell.pending.keys().next() {
                if next.is_none_or(|n| t < n) {
                    next = Some(t);
                }
            }
        }
        next
    }

    fn earliest_send(&self) -> Option<SimTime> {
        let mut bound: Option<SimTime> = None;
        for cell in &self.cells {
            for (&(t, _, _), ev) in &cell.pending {
                let Some((first, crosses_planes)) = cell.send_bound(t, ev) else {
                    continue;
                };
                let b = match (self.granularity, crosses_planes) {
                    // At column granularity every departure crosses
                    // shards.
                    (CubeShards::Column, _) => first,
                    (CubeShards::Plane, true) => first,
                    // A shard-local grid transit: the earliest
                    // *cross-shard* consequence is the reply finally
                    // crossing the depth bus after forward transit,
                    // service, and return transit.
                    (CubeShards::Plane, false) => match ev {
                        CellEv::Entry { .. } => {
                            t + SimDuration::from_nanos(
                                GRID_HOP_NS + SERVICE_NS + GRID_HOP_NS + HOP_NS,
                            )
                        }
                        _ => first + SimDuration::from_nanos(HOP_NS),
                    },
                };
                if bound.is_none_or(|cur| b < cur) {
                    bound = Some(b);
                }
            }
        }
        // Machine events are plane-internal: they never send over a bus
        // between shards and so never constrain the neighbours.
        bound
    }

    fn min_turnaround(&self) -> SimDuration {
        match self.granularity {
            // An inbound request may be forwarded after one grid hop.
            CubeShards::Column => SimDuration::from_nanos(GRID_HOP_NS.min(HOP_NS)),
            // An inbound request is answered no earlier than one service
            // plus the depth hop back.
            CubeShards::Plane => SimDuration::from_nanos(SERVICE_NS + HOP_NS),
        }
    }

    fn advance(
        &mut self,
        horizon: SimTime,
        inbox: Vec<Arrival<DepthMsg>>,
        out: &mut Outbox<DepthMsg>,
    ) {
        for a in inbox {
            self.deliver(a.at, a.msg);
        }
        let mut emits: Vec<(usize, usize, SimTime, DepthMsg)> = Vec::new();
        loop {
            // The earliest pending cell event across this shard's cells;
            // keys are content-addressed, so the winner is
            // iteration-order-independent.
            let mut best: Option<(usize, (SimTime, u8, u64))> = None;
            for (ci, cell) in self.cells.iter().enumerate() {
                if let Some(&k) = cell.pending.keys().next() {
                    if best.is_none_or(|(_, bk)| k < bk) {
                        best = Some((ci, k));
                    }
                }
            }
            // Drain machine events strictly below the next cell event (or
            // the horizon), then the cell event itself — so at equal
            // instants depth traffic runs first: a fixed, documented
            // order.
            let bound = best.map_or(horizon, |(_, (t, _, _))| horizon.min(t));
            if let Some(machine) = &mut self.machine {
                machine.advance_until(bound);
            }
            match best {
                Some((ci, key @ (t, _, _))) if t < horizon => {
                    let ev = self.cells[ci].pending.remove(&key).unwrap();
                    self.cells[ci].handle(t, ev, &mut |plane, col, at, msg| {
                        emits.push((plane, col, at, msg));
                    });
                    for (plane, col, at, msg) in emits.drain(..) {
                        let target = self.target_shard(plane, col);
                        if target == self.index {
                            self.deliver(at, msg);
                        } else {
                            out.send(target, at, msg);
                        }
                    }
                }
                _ => break,
            }
        }
    }
}

/// Configuration of a parallel cube run.
#[derive(Debug, Clone)]
pub struct CubeConfig {
    /// Cube side `n`: `n` planes of `n x n` processors (`n^3` total).
    pub side: u32,
    /// Coherence engine every plane runs.
    pub engine: EngineKind,
    /// The closed-loop synthetic workload each plane drives.
    pub spec: SyntheticSpec,
    /// Blocking transactions per processor.
    pub txns_per_node: u64,
    /// Open-loop remote (cross-plane) ops each plane issues, split across
    /// its `n` column generators.
    pub remote_ops: u64,
    /// Mean gap between a column generator's remote issues (ns).
    pub remote_gap_ns: f64,
    /// Remote ops target lines `0..remote_lines`; a line's home column is
    /// `line % n`.
    pub remote_lines: u64,
    /// Master seed; every machine and per-column traffic stream derives
    /// from it by [`split_seed`].
    pub seed: u64,
    /// Worker threads (1 = serial reference execution).
    pub workers: usize,
    /// Shard granularity (plane vs. column-bus domain).
    pub shards: CubeShards,
    /// Round executor.
    pub executor: ExecutorKind,
    /// Cap horizons with the adaptive conservative window.
    pub adaptive_window: bool,
    /// Run the coherence checker at the end of every plane's workload.
    pub check: bool,
    /// Capture per-plane machine traces (JSONL) and fingerprint them.
    pub capture_trace: bool,
}

impl CubeConfig {
    /// A small default: side `n`, paper timing, Multicube engine, plane
    /// sharding, two-barrier executor, checking on, tracing off.
    pub fn new(side: u32) -> Self {
        CubeConfig {
            side,
            engine: EngineKind::Multicube,
            spec: SyntheticSpec::default(),
            txns_per_node: 10,
            remote_ops: 64,
            remote_gap_ns: 400.0,
            remote_lines: 64,
            seed: 0x5EED,
            workers: 1,
            shards: CubeShards::Plane,
            executor: ExecutorKind::TwoBarrier,
            adaptive_window: false,
            check: true,
            capture_trace: false,
        }
    }
}

/// One plane's slice of the cube report.
#[derive(Debug, Clone)]
pub struct PlaneReport {
    /// The plane's closed-loop workload report.
    pub run: RunReport,
    /// The plane's depth-traffic statistics (summed over its columns).
    pub depth: DepthStats,
    /// Order-sensitive digest of the plane's depth events (its cells'
    /// digests combined in column order).
    pub depth_digest: u64,
    /// md5 of the plane's machine trace (when capture was on).
    pub trace_md5: Option<String>,
}

/// The result of a cube run.
#[derive(Debug, Clone)]
pub struct CubeReport {
    /// Cube side `n`.
    pub side: u32,
    /// Total processors (`n^3`).
    pub processors: u64,
    /// Shards the run was decomposed into (`n` or `n^2`).
    pub shard_count: usize,
    /// Per-plane results, in plane order.
    pub planes: Vec<PlaneReport>,
    /// Scheduler statistics. Deterministic for a given granularity and
    /// window policy, but *not* granularity-invariant (a different shard
    /// graph synchronizes differently) — which is why the fingerprint
    /// does not include it.
    pub pdes: PdesStats,
    /// Machine events delivered across all planes (the throughput-kernel
    /// work unit).
    pub events_delivered: u64,
}

impl CubeReport {
    /// A canonical fingerprint of everything deterministic about the run:
    /// per-plane transaction counts, depth statistics and digests, and
    /// (when captured) the machine trace hashes. Byte-identical across
    /// shard granularity, executor, window policy, and worker count by
    /// construction.
    pub fn fingerprint(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("side={} procs={}\n", self.side, self.processors));
        for (i, p) in self.planes.iter().enumerate() {
            s.push_str(&format!(
                "plane={} txns={} events={} depth={:?} digest={:#018x} trace={}\n",
                i,
                p.run.transactions_completed,
                p.run.events_delivered,
                p.depth,
                p.depth_digest,
                p.trace_md5.as_deref().unwrap_or("-"),
            ));
        }
        multicube_sim::md5_hex(s.as_bytes())
    }
}

/// Builds one plane's machine with its trace sink.
fn build_machine(cfg: &CubeConfig, plane: usize) -> (Machine, Option<SharedBuf>) {
    let mconfig = MachineConfig::grid(cfg.side)
        .expect("valid grid side")
        .with_engine(cfg.engine)
        .with_checking(cfg.check);
    let mseed = split_seed(cfg.seed, stream_id("pdes", "plane"), plane as u64);
    let mut machine = Machine::new(mconfig, mseed).expect("valid machine config");
    let trace = cfg.capture_trace.then(SharedBuf::default);
    if let Some(buf) = &trace {
        machine.set_trace_sink(TraceSink::writer(Box::new(buf.clone()), TraceFormat::Jsonl));
    }
    machine.begin_synthetic(&cfg.spec, cfg.txns_per_node);
    (machine, trace)
}

/// Builds one column cell and schedules its first issue. The per-cell RNG
/// stream and issue budget depend only on `(plane, col)`, never on the
/// granularity.
fn build_cell(cfg: &CubeConfig, plane: usize, col: usize) -> ColumnCell {
    let side = cfg.side as usize;
    let per_col =
        cfg.remote_ops / side as u64 + u64::from((col as u64) < cfg.remote_ops % side as u64);
    let mut cell = ColumnCell {
        plane,
        col,
        side,
        rng: DeterministicRng::seed(split_seed(
            cfg.seed,
            stream_id("pdes", "depth"),
            (plane * side + col) as u64,
        )),
        pending: std::collections::BTreeMap::new(),
        issues_left: per_col,
        op_seq: 0,
        remote_gap_ns: cfg.remote_gap_ns,
        remote_lines: cfg.remote_lines,
        port_free_at: SimTime::ZERO,
        words: FxHashMap::default(),
        outstanding: FxHashMap::default(),
        stats: DepthStats::default(),
        digest: 0,
    };
    if cell.issues_left > 0 && side > 1 {
        let first = 1 + cell.rng.exponential(cfg.remote_gap_ns).max(0.0) as u64;
        cell.schedule(
            SimTime::from_nanos(first),
            CLASS_ISSUE,
            op_key(plane as u32, col as u32, 0),
            CellEv::Issue,
        );
    } else {
        cell.issues_left = 0;
    }
    cell
}

/// Builds the shards and runs the cube to quiescence.
///
/// # Panics
///
/// Panics on an invalid side (< 2), on a coherence violation when
/// checking is on, and propagates any shard panic.
pub fn run_cube(cfg: &CubeConfig) -> CubeReport {
    assert!(cfg.side >= 2, "a cube needs side >= 2");
    let side = cfg.side as usize;
    // The two-level map is the ground truth for the shard decomposition:
    // dimension 0 picks the plane, dimension 1 the column-bus domain.
    let map = TwoLevelMap::new(Multicube::new(cfg.side, 3).expect("valid cube"), 0, 1)
        .expect("dimensions 0 and 1 are distinct");

    let mut shards: Vec<CubeShard> = match cfg.shards {
        CubeShards::Plane => (0..side)
            .map(|plane| {
                let (machine, trace) = build_machine(cfg, plane);
                CubeShard {
                    index: plane,
                    granularity: CubeShards::Plane,
                    side,
                    plane,
                    machine: Some(machine),
                    cells: (0..side).map(|col| build_cell(cfg, plane, col)).collect(),
                    trace,
                }
            })
            .collect(),
        CubeShards::Column => (0..map.num_shards())
            .map(|index| {
                let (plane, col) = map.domains_of(index);
                let (plane, col) = (plane as usize, col as usize);
                // The plane's machine rides on its column-0 shard; any
                // placement works because machine events never cross
                // shards.
                let (machine, trace) = if col == 0 {
                    let (m, t) = build_machine(cfg, plane);
                    (Some(m), t)
                } else {
                    (None, None)
                };
                CubeShard {
                    index: index as usize,
                    granularity: CubeShards::Column,
                    side,
                    plane,
                    machine,
                    cells: vec![build_cell(cfg, plane, col)],
                    trace,
                }
            })
            .collect(),
    };
    let shard_count = shards.len();

    // Both hop latencies are 10 ns, so the lookahead is one bus hop at
    // either granularity.
    let lookahead = SimDuration::from_nanos(HOP_NS.min(GRID_HOP_NS));
    let mut pdes_cfg = if cfg.workers <= 1 {
        PdesConfig::serial(lookahead)
    } else {
        PdesConfig::parallel(cfg.workers, lookahead)
    };
    pdes_cfg = pdes_cfg.with_executor(cfg.executor);
    if cfg.adaptive_window {
        pdes_cfg = pdes_cfg.with_window(WindowPolicy::adaptive(lookahead));
    }
    let stats = pdes::run(&pdes_cfg, &mut shards);

    // Regroup shards into planes: machines and traces from wherever they
    // rode, cells summed and digest-combined in column order.
    let mut machines: Vec<Option<(Machine, Option<SharedBuf>)>> = (0..side).map(|_| None).collect();
    let mut plane_cells: Vec<Vec<ColumnCell>> = (0..side).map(|_| Vec::new()).collect();
    for shard in shards {
        let plane = shard.plane;
        if let Some(machine) = shard.machine {
            machines[plane] = Some((machine, shard.trace));
        }
        plane_cells[plane].extend(shard.cells);
    }

    let mut events_delivered = 0u64;
    let planes: Vec<PlaneReport> = machines
        .into_iter()
        .zip(plane_cells)
        .enumerate()
        .map(|(plane, (machine, mut cells))| {
            let (mut machine, trace) = machine.expect("every plane has a machine");
            cells.sort_by_key(|c| c.col);
            let mut depth = DepthStats::default();
            let mut depth_digest = 0u64;
            for cell in &cells {
                assert!(
                    cell.outstanding.is_empty(),
                    "cell ({plane}, {}) finished with unanswered remote ops",
                    cell.col
                );
                assert!(cell.pending.is_empty());
                depth.merge(&cell.stats);
                depth_digest = depth_digest
                    .rotate_left(13)
                    .wrapping_mul(0x100000001B3)
                    .wrapping_add(cell.digest);
            }
            let run = machine.finish_synthetic();
            events_delivered += run.events_delivered;
            let trace_md5 = trace
                .as_ref()
                .map(|buf| multicube_sim::md5_hex(&buf.0.lock().unwrap()));
            PlaneReport {
                run,
                depth,
                depth_digest,
                trace_md5,
            }
        })
        .collect();

    CubeReport {
        side: cfg.side,
        processors: (cfg.side as u64).pow(3),
        shard_count,
        planes,
        pdes: stats,
        events_delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(workers: usize) -> CubeConfig {
        let mut cfg = CubeConfig::new(3);
        cfg.txns_per_node = 6;
        cfg.remote_ops = 24;
        cfg.remote_gap_ns = 150.0;
        cfg.workers = workers;
        cfg.capture_trace = true;
        cfg
    }

    #[test]
    fn cube_runs_and_traffic_balances() {
        let report = run_cube(&small_cfg(1));
        assert_eq!(report.side, 3);
        assert_eq!(report.processors, 27);
        assert_eq!(report.planes.len(), 3);
        assert_eq!(report.shard_count, 3);
        let issued: u64 = report.planes.iter().map(|p| p.depth.issued).sum();
        let serviced: u64 = report.planes.iter().map(|p| p.depth.serviced).sum();
        let replies: u64 = report.planes.iter().map(|p| p.depth.replies).sum();
        assert_eq!(issued, 3 * 24);
        assert_eq!(serviced, issued);
        assert_eq!(replies, issued);
        for p in &report.planes {
            assert_eq!(p.run.transactions_completed, 6 * 9);
            assert!(p.depth.latency_max_ns >= 2 * HOP_NS + SERVICE_NS);
            assert!(p.trace_md5.is_some());
        }
        assert!(report.pdes.messages >= 2 * issued);
    }

    #[test]
    fn worker_count_does_not_change_the_fingerprint() {
        let reference = run_cube(&small_cfg(1)).fingerprint();
        for workers in [2usize, 3, 8] {
            let fp = run_cube(&small_cfg(workers)).fingerprint();
            assert_eq!(fp, reference, "workers={workers}");
        }
    }

    #[test]
    fn column_granularity_reproduces_the_plane_fingerprint() {
        let reference = run_cube(&small_cfg(1));
        for workers in [1usize, 2, 5] {
            let mut cfg = small_cfg(workers);
            cfg.shards = CubeShards::Column;
            let report = run_cube(&cfg);
            assert_eq!(report.shard_count, 9);
            assert_eq!(
                report.fingerprint(),
                reference.fingerprint(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn executor_and_window_do_not_change_the_fingerprint() {
        let reference = run_cube(&small_cfg(1)).fingerprint();
        for shards in [CubeShards::Plane, CubeShards::Column] {
            for executor in [ExecutorKind::TwoBarrier, ExecutorKind::WorkStealing] {
                for adaptive in [false, true] {
                    let mut cfg = small_cfg(3);
                    cfg.shards = shards;
                    cfg.executor = executor;
                    cfg.adaptive_window = adaptive;
                    let fp = run_cube(&cfg).fingerprint();
                    assert_eq!(fp, reference, "{shards:?} {executor:?} adaptive={adaptive}");
                }
            }
        }
    }

    #[test]
    fn engines_all_support_the_cube() {
        for engine in EngineKind::all() {
            let mut cfg = small_cfg(2);
            cfg.engine = engine;
            cfg.capture_trace = false;
            let report = run_cube(&cfg);
            assert_eq!(report.planes.len(), 3, "{engine:?}");
        }
    }

    #[test]
    fn shards_override_parses_and_rejects_loudly() {
        assert_eq!(CubeShards::from_override(None), None);
        assert_eq!(
            CubeShards::from_override(Some("plane")),
            Some(CubeShards::Plane)
        );
        assert_eq!(
            CubeShards::from_override(Some(" column ")),
            Some(CubeShards::Column)
        );
        let err =
            std::panic::catch_unwind(|| CubeShards::from_override(Some("diagonal"))).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(
            msg,
            "MULTICUBE_PDES_SHARDS must be \"plane\" or \"column\", got \"diagonal\""
        );
    }
}
