//! The three-dimensional Multicube as a conservatively parallel
//! simulation, sharded by plane.
//!
//! Section 6 of the paper generalizes the Wisconsin Multicube to `n^k`
//! processors; the `k = 3` instance is a cube of `n` *planes*, each an
//! `n x n` grid identical to the 2-D machine, with a third set of "depth"
//! buses connecting each processor to its images in every other plane.
//! This module simulates that machine at scale by giving every plane its
//! own full [`Machine`] — the complete Appendix A protocol, its own event
//! wheel, its own deterministic RNG stream — and running the planes as
//! shards of a conservative parallel DES ([`multicube_sim::pdes`]).
//!
//! Cross-plane traffic models the §4 uncached-remote access pattern: each
//! plane issues an open-loop stream of remote operations (uncached READs
//! of a home plane's committed line version, and TEST-AND-SET / CLEAR on
//! a memory-side synchronization word) over the depth buses. A depth-bus
//! hop takes [`HOP_NS`]; the home plane services requests through a FIFO
//! depth port at [`SERVICE_NS`] each and sends the reply back over the
//! bus. The hop latency is the *lookahead* that makes conservative
//! synchronization work: no plane can affect another in less than
//! `HOP_NS`, so a plane may safely run that far past its neighbours'
//! bounds.
//!
//! Determinism: every plane's machine seed and depth-traffic RNG stream
//! derive from the cube seed by [`split_seed`], the scheduler delivers
//! cross-plane messages in `(time, source plane, sequence)` order, and
//! the plane-vs-depth tie-break inside a shard is fixed (depth events
//! first at equal instants). A cube run is therefore byte-identical — per
//! -plane machine traces included — at *any* worker count, which
//! `crates/core/tests/pdes_determinism.rs` pins.

use std::io::Write;
use std::sync::{Arc, Mutex};

use multicube_mem::LineAddr;
use multicube_sim::pdes::{self, Arrival, Outbox, PdesConfig, PdesStats, ShardModel};
use multicube_sim::{split_seed, stream_id, DeterministicRng, FxHashMap, SimDuration, SimTime};

use crate::config::{EngineKind, MachineConfig};
use crate::driver::SyntheticSpec;
use crate::machine::Machine;
use crate::metrics::RunReport;
use crate::trace::{TraceFormat, TraceSink};

/// One depth-bus hop: the minimum cross-plane latency, and therefore the
/// conservative lookahead.
pub const HOP_NS: u64 = 10;

/// Fixed service time of the depth port at the home plane (one uncached
/// memory-side access, no cache fill).
pub const SERVICE_NS: u64 = 120;

/// A remote (cross-plane) operation kind — the §4 uncached accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteKind {
    /// Uncached read of the home plane's committed line version.
    Read,
    /// Test-and-set on a memory-side synchronization word.
    TestAndSet,
    /// Clear (release) of a synchronization word.
    Clear,
}

impl RemoteKind {
    fn code(self) -> u64 {
        match self {
            RemoteKind::Read => 0,
            RemoteKind::TestAndSet => 1,
            RemoteKind::Clear => 2,
        }
    }
}

/// A message on a depth bus.
#[derive(Debug, Clone, Copy)]
pub enum DepthMsg {
    /// A remote operation heading to its home plane.
    Request {
        origin: usize,
        op_seq: u64,
        line: u64,
        kind: RemoteKind,
    },
    /// The home plane's answer: the value read (line version or previous
    /// sync-word contents) and whether a TEST-AND-SET won.
    Reply {
        op_seq: u64,
        value: u64,
        success: bool,
    },
}

/// Internal depth-port events of one plane, ordered by `(time, class,
/// seq)` — class keeps the intra-instant order fixed and documented:
/// arrivals service before issues at the same instant.
#[derive(Debug, Clone, Copy)]
enum DepthEv {
    /// The open-loop generator fires: issue one remote op.
    Issue,
    /// A request arrived over the depth bus (queue it at the port).
    RequestArrival {
        origin: usize,
        op_seq: u64,
        line: u64,
        kind: RemoteKind,
    },
    /// The port finishes servicing a request (perform it, send reply).
    ServiceDone {
        origin: usize,
        op_seq: u64,
        line: u64,
        kind: RemoteKind,
    },
    /// A reply arrived back at the requester.
    ReplyArrival {
        op_seq: u64,
        value: u64,
        success: bool,
    },
}

/// Aggregate depth-bus statistics of one plane (all integers, so the
/// quick-mode artifacts that CI diffs stay exactly reproducible).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepthStats {
    /// Remote ops this plane issued.
    pub issued: u64,
    /// Requests this plane serviced for others.
    pub serviced: u64,
    /// Replies this plane received.
    pub replies: u64,
    /// TEST-AND-SET attempts by this plane that won the word.
    pub tas_won: u64,
    /// Total round-trip latency over all replies (ns).
    pub latency_total_ns: u64,
    /// Worst round-trip latency (ns).
    pub latency_max_ns: u64,
}

/// A shared append-only byte sink for per-plane machine traces.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One plane of the cube: a full 2-D machine plus the depth-bus port and
/// the open-loop remote-traffic generator.
struct PlaneShard {
    plane: usize,
    planes: usize,
    machine: Machine,
    rng: DeterministicRng,
    pending: std::collections::BTreeMap<(SimTime, u8, u64), DepthEv>,
    tiebreak: u64,
    /// Remote ops the generator has yet to issue (`Issue` is pending iff
    /// this is nonzero).
    issues_left: u64,
    remote_gap_ns: f64,
    remote_lines: u64,
    /// When the FIFO depth port next frees up.
    port_free_at: SimTime,
    /// Memory-side synchronization words (plane-local; remote TAS/CLEAR
    /// target the *home* plane's map).
    sync: FxHashMap<u64, u64>,
    /// In-flight remote ops this plane issued: op_seq -> issue time.
    outstanding: FxHashMap<u64, SimTime>,
    stats: DepthStats,
    /// Order-sensitive digest of every depth event this plane observed.
    digest: u64,
    trace: Option<SharedBuf>,
}

impl PlaneShard {
    fn schedule(&mut self, at: SimTime, class: u8, ev: DepthEv) {
        self.tiebreak += 1;
        self.pending.insert((at, class, self.tiebreak), ev);
    }

    fn fold(&mut self, at: SimTime, vals: [u64; 3]) {
        for v in [at.as_nanos(), vals[0], vals[1], vals[2]] {
            self.digest = self
                .digest
                .rotate_left(13)
                .wrapping_mul(0x100000001B3)
                .wrapping_add(v);
        }
    }

    /// Handles one depth event at instant `at`, emitting bus messages
    /// through `out`.
    fn handle_depth(&mut self, at: SimTime, ev: DepthEv, out: &mut Outbox<DepthMsg>) {
        match ev {
            DepthEv::Issue => {
                let home = self
                    .rng
                    .below_excluding(self.planes as u64, self.plane as u64)
                    as usize;
                let line = self.rng.below(self.remote_lines);
                let kind = match self.rng.below(10) {
                    0..=5 => RemoteKind::Read,
                    6..=8 => RemoteKind::TestAndSet,
                    _ => RemoteKind::Clear,
                };
                let op_seq = self.stats.issued;
                self.stats.issued += 1;
                self.outstanding.insert(op_seq, at);
                self.fold(at, [0, op_seq, (home as u64) << 32 | line]);
                out.send(
                    home,
                    at + SimDuration::from_nanos(HOP_NS),
                    DepthMsg::Request {
                        origin: self.plane,
                        op_seq,
                        line,
                        kind,
                    },
                );
                self.issues_left -= 1;
                if self.issues_left > 0 {
                    let gap = 1 + self.rng.exponential(self.remote_gap_ns).max(0.0) as u64;
                    self.schedule(at + SimDuration::from_nanos(gap), 1, DepthEv::Issue);
                }
            }
            DepthEv::RequestArrival {
                origin,
                op_seq,
                line,
                kind,
            } => {
                let start = self.port_free_at.max(at);
                let done = start + SimDuration::from_nanos(SERVICE_NS);
                self.port_free_at = done;
                self.fold(at, [1, (origin as u64) << 32 | op_seq, line]);
                self.schedule(
                    done,
                    0,
                    DepthEv::ServiceDone {
                        origin,
                        op_seq,
                        line,
                        kind,
                    },
                );
            }
            DepthEv::ServiceDone {
                origin,
                op_seq,
                line,
                kind,
            } => {
                let (value, success) = match kind {
                    RemoteKind::Read => (
                        self.machine.committed_version(LineAddr::new(line)).stamp(),
                        true,
                    ),
                    RemoteKind::TestAndSet => {
                        let word = self.sync.entry(line).or_insert(0);
                        let old = *word;
                        if old == 0 {
                            *word = 1;
                        }
                        (old, old == 0)
                    }
                    RemoteKind::Clear => {
                        let word = self.sync.entry(line).or_insert(0);
                        let old = *word;
                        *word = 0;
                        (old, true)
                    }
                };
                self.stats.serviced += 1;
                self.fold(at, [2, kind.code() << 32 | op_seq, value]);
                out.send(
                    origin,
                    at + SimDuration::from_nanos(HOP_NS),
                    DepthMsg::Reply {
                        op_seq,
                        value,
                        success,
                    },
                );
            }
            DepthEv::ReplyArrival {
                op_seq,
                value,
                success,
            } => {
                let issued = self
                    .outstanding
                    .remove(&op_seq)
                    .expect("reply to an op never issued");
                let latency = (at - issued).as_nanos();
                self.stats.replies += 1;
                self.stats.tas_won += success as u64;
                self.stats.latency_total_ns += latency;
                self.stats.latency_max_ns = self.stats.latency_max_ns.max(latency);
                self.fold(at, [3, op_seq, value]);
            }
        }
    }
}

impl ShardModel for PlaneShard {
    type Msg = DepthMsg;

    fn next_time(&self) -> Option<SimTime> {
        let depth = self.pending.keys().next().map(|&(t, _, _)| t);
        let mach = self.machine.next_event_time();
        match (depth, mach) {
            (Some(d), Some(m)) => Some(d.min(m)),
            (d, m) => d.or(m),
        }
    }

    fn earliest_send(&self) -> Option<SimTime> {
        let mut bound: Option<SimTime> = None;
        let mut fold = |t: SimTime| {
            if bound.is_none_or(|b| t < b) {
                bound = Some(t);
            }
        };
        for (&(t, _, _), ev) in &self.pending {
            match ev {
                // An issue or a finished service puts a message on the bus
                // one hop later.
                DepthEv::Issue | DepthEv::ServiceDone { .. } => {
                    fold(t + SimDuration::from_nanos(HOP_NS))
                }
                // A queued request must be serviced first; the port may be
                // busy, but never replies earlier than this.
                DepthEv::RequestArrival { .. } => {
                    fold(t + SimDuration::from_nanos(SERVICE_NS + HOP_NS))
                }
                // Replies terminate at this plane.
                DepthEv::ReplyArrival { .. } => {}
            }
        }
        // Machine events are plane-internal: they never send over a depth
        // bus and so never constrain the neighbours.
        bound
    }

    fn min_turnaround(&self) -> SimDuration {
        SimDuration::from_nanos(SERVICE_NS + HOP_NS)
    }

    fn advance(
        &mut self,
        horizon: SimTime,
        inbox: Vec<Arrival<DepthMsg>>,
        out: &mut Outbox<DepthMsg>,
    ) {
        for a in inbox {
            match a.msg {
                DepthMsg::Request {
                    origin,
                    op_seq,
                    line,
                    kind,
                } => self.schedule(
                    a.at,
                    0,
                    DepthEv::RequestArrival {
                        origin,
                        op_seq,
                        line,
                        kind,
                    },
                ),
                DepthMsg::Reply {
                    op_seq,
                    value,
                    success,
                } => self.schedule(
                    a.at,
                    0,
                    DepthEv::ReplyArrival {
                        op_seq,
                        value,
                        success,
                    },
                ),
            }
        }
        loop {
            let depth_next = self.pending.keys().next().copied();
            // Drain machine events strictly below the next depth event
            // (or the horizon), then the depth event itself — so at equal
            // instants depth events run first: a fixed, documented order.
            let bound = match depth_next {
                Some((t, _, _)) => horizon.min(t),
                None => horizon,
            };
            self.machine.advance_until(bound);
            match depth_next {
                Some(key @ (t, _, _)) if t < horizon => {
                    let ev = self.pending.remove(&key).unwrap();
                    self.handle_depth(t, ev, out);
                }
                _ => break,
            }
        }
    }
}

/// Configuration of a parallel cube run.
#[derive(Debug, Clone)]
pub struct CubeConfig {
    /// Cube side `n`: `n` planes of `n x n` processors (`n^3` total).
    pub side: u32,
    /// Coherence engine every plane runs.
    pub engine: EngineKind,
    /// The closed-loop synthetic workload each plane drives.
    pub spec: SyntheticSpec,
    /// Blocking transactions per processor.
    pub txns_per_node: u64,
    /// Open-loop remote (cross-plane) ops each plane issues.
    pub remote_ops: u64,
    /// Mean gap between a plane's remote issues (ns).
    pub remote_gap_ns: f64,
    /// Remote ops target lines `0..remote_lines`.
    pub remote_lines: u64,
    /// Master seed; every plane's machine and traffic stream derive from
    /// it by [`split_seed`].
    pub seed: u64,
    /// Worker threads (1 = serial reference execution).
    pub workers: usize,
    /// Run the coherence checker at the end of every plane's workload.
    pub check: bool,
    /// Capture per-plane machine traces (JSONL) and fingerprint them.
    pub capture_trace: bool,
}

impl CubeConfig {
    /// A small default: side `n`, paper timing, Multicube engine,
    /// checking on, tracing off.
    pub fn new(side: u32) -> Self {
        CubeConfig {
            side,
            engine: EngineKind::Multicube,
            spec: SyntheticSpec::default(),
            txns_per_node: 10,
            remote_ops: 64,
            remote_gap_ns: 400.0,
            remote_lines: 64,
            seed: 0x5EED,
            workers: 1,
            check: true,
            capture_trace: false,
        }
    }
}

/// One plane's slice of the cube report.
#[derive(Debug, Clone)]
pub struct PlaneReport {
    /// The plane's closed-loop workload report.
    pub run: RunReport,
    /// The plane's depth-bus traffic statistics.
    pub depth: DepthStats,
    /// Order-sensitive digest of the plane's depth events.
    pub depth_digest: u64,
    /// md5 of the plane's machine trace (when capture was on).
    pub trace_md5: Option<String>,
}

/// The result of a cube run.
#[derive(Debug, Clone)]
pub struct CubeReport {
    /// Cube side `n`.
    pub side: u32,
    /// Total processors (`n^3`).
    pub processors: u64,
    /// Per-plane results, in plane order.
    pub planes: Vec<PlaneReport>,
    /// Scheduler statistics.
    pub pdes: PdesStats,
    /// Machine events delivered across all planes (the throughput-kernel
    /// work unit).
    pub events_delivered: u64,
}

impl CubeReport {
    /// A canonical fingerprint of everything deterministic about the run:
    /// per-plane transaction counts, depth statistics and digests, and
    /// (when captured) the machine trace hashes. Byte-identical across
    /// worker counts by construction.
    pub fn fingerprint(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("side={} procs={}\n", self.side, self.processors));
        for (i, p) in self.planes.iter().enumerate() {
            s.push_str(&format!(
                "plane={} txns={} events={} depth={:?} digest={:#018x} trace={}\n",
                i,
                p.run.transactions_completed,
                p.run.events_delivered,
                p.depth,
                p.depth_digest,
                p.trace_md5.as_deref().unwrap_or("-"),
            ));
        }
        multicube_sim::md5_hex(s.as_bytes())
    }
}

/// Builds the planes and runs the cube to quiescence.
///
/// # Panics
///
/// Panics on an invalid side (< 2), on a coherence violation when
/// checking is on, and propagates any plane panic.
pub fn run_cube(cfg: &CubeConfig) -> CubeReport {
    assert!(cfg.side >= 2, "a cube needs side >= 2");
    let planes = cfg.side as usize;
    let mut shards: Vec<PlaneShard> = (0..planes)
        .map(|plane| {
            let mconfig = MachineConfig::grid(cfg.side)
                .expect("valid grid side")
                .with_engine(cfg.engine)
                .with_checking(cfg.check);
            let mseed = split_seed(cfg.seed, stream_id("pdes", "plane"), plane as u64);
            let mut machine = Machine::new(mconfig, mseed).expect("valid machine config");
            let trace = cfg.capture_trace.then(SharedBuf::default);
            if let Some(buf) = &trace {
                machine
                    .set_trace_sink(TraceSink::writer(Box::new(buf.clone()), TraceFormat::Jsonl));
            }
            machine.begin_synthetic(&cfg.spec, cfg.txns_per_node);
            let mut shard = PlaneShard {
                plane,
                planes,
                machine,
                rng: DeterministicRng::seed(split_seed(
                    cfg.seed,
                    stream_id("pdes", "depth"),
                    plane as u64,
                )),
                pending: std::collections::BTreeMap::new(),
                tiebreak: 0,
                issues_left: cfg.remote_ops,
                remote_gap_ns: cfg.remote_gap_ns,
                remote_lines: cfg.remote_lines,
                port_free_at: SimTime::ZERO,
                sync: FxHashMap::default(),
                outstanding: FxHashMap::default(),
                stats: DepthStats::default(),
                digest: 0,
                trace,
            };
            if shard.issues_left > 0 && planes > 1 {
                let first = 1 + shard.rng.exponential(cfg.remote_gap_ns).max(0.0) as u64;
                shard.schedule(SimTime::from_nanos(first), 1, DepthEv::Issue);
            } else {
                shard.issues_left = 0;
            }
            shard
        })
        .collect();

    let pdes_cfg = if cfg.workers <= 1 {
        PdesConfig::serial(SimDuration::from_nanos(HOP_NS))
    } else {
        PdesConfig::parallel(cfg.workers, SimDuration::from_nanos(HOP_NS))
    };
    let stats = pdes::run(&pdes_cfg, &mut shards);

    let mut events_delivered = 0u64;
    let planes: Vec<PlaneReport> = shards
        .into_iter()
        .map(|mut shard| {
            assert!(
                shard.outstanding.is_empty(),
                "plane {} finished with unanswered remote ops",
                shard.plane
            );
            let run = shard.machine.finish_synthetic();
            events_delivered += run.events_delivered;
            let trace_md5 = shard
                .trace
                .as_ref()
                .map(|buf| multicube_sim::md5_hex(&buf.0.lock().unwrap()));
            PlaneReport {
                run,
                depth: shard.stats,
                depth_digest: shard.digest,
                trace_md5,
            }
        })
        .collect();

    CubeReport {
        side: cfg.side,
        processors: (cfg.side as u64).pow(3),
        planes,
        pdes: stats,
        events_delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(workers: usize) -> CubeConfig {
        let mut cfg = CubeConfig::new(3);
        cfg.txns_per_node = 6;
        cfg.remote_ops = 24;
        cfg.remote_gap_ns = 150.0;
        cfg.workers = workers;
        cfg.capture_trace = true;
        cfg
    }

    #[test]
    fn cube_runs_and_traffic_balances() {
        let report = run_cube(&small_cfg(1));
        assert_eq!(report.side, 3);
        assert_eq!(report.processors, 27);
        assert_eq!(report.planes.len(), 3);
        let issued: u64 = report.planes.iter().map(|p| p.depth.issued).sum();
        let serviced: u64 = report.planes.iter().map(|p| p.depth.serviced).sum();
        let replies: u64 = report.planes.iter().map(|p| p.depth.replies).sum();
        assert_eq!(issued, 3 * 24);
        assert_eq!(serviced, issued);
        assert_eq!(replies, issued);
        for p in &report.planes {
            assert_eq!(p.run.transactions_completed, 6 * 9);
            assert!(p.depth.latency_max_ns >= 2 * HOP_NS + SERVICE_NS);
            assert!(p.trace_md5.is_some());
        }
        assert!(report.pdes.messages >= 2 * issued);
    }

    #[test]
    fn worker_count_does_not_change_the_fingerprint() {
        let reference = run_cube(&small_cfg(1)).fingerprint();
        for workers in [2usize, 3, 8] {
            let fp = run_cube(&small_cfg(workers)).fingerprint();
            assert_eq!(fp, reference, "workers={workers}");
        }
    }

    #[test]
    fn engines_all_support_the_cube() {
        for engine in EngineKind::all() {
            let mut cfg = small_cfg(2);
            cfg.engine = engine;
            cfg.capture_trace = false;
            let report = run_cube(&cfg);
            assert_eq!(report.planes.len(), 3, "{engine:?}");
        }
    }
}
