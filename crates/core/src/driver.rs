//! Processor-side requests and the synthetic workload specification.

use multicube_mem::LineAddr;

/// What a processor asks its cache controller to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Read a word of the line (a READ transaction on a miss).
    Read,
    /// Write a word of the line (a READ-MOD transaction unless the line is
    /// already held modified).
    Write,
    /// Write an entire line without regard to its prior contents (an
    /// ALLOCATE transaction — the §3 optimization of READ-MOD).
    Allocate,
    /// Flush a modified line back to memory (a WRITE-BACK transaction).
    Writeback,
    /// Atomic remote test-and-set on the line's synchronization word (§4).
    TestAndSet,
}

/// One processor request.
///
/// # Example
///
/// ```
/// use multicube::{Request, RequestKind};
/// use multicube_mem::LineAddr;
///
/// let req = Request::new(RequestKind::Read, LineAddr::new(7));
/// assert_eq!(req.kind, RequestKind::Read);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Operation class.
    pub kind: RequestKind,
    /// Target coherency line.
    pub line: LineAddr,
}

impl Request {
    /// Creates a request.
    pub fn new(kind: RequestKind, line: LineAddr) -> Self {
        Request { kind, line }
    }

    /// Shorthand for a read request.
    pub fn read(line: LineAddr) -> Self {
        Request::new(RequestKind::Read, line)
    }

    /// Shorthand for a write request.
    pub fn write(line: LineAddr) -> Self {
        Request::new(RequestKind::Write, line)
    }

    /// Shorthand for an allocate request.
    pub fn allocate(line: LineAddr) -> Self {
        Request::new(RequestKind::Allocate, line)
    }

    /// Shorthand for a writeback request.
    pub fn writeback(line: LineAddr) -> Self {
        Request::new(RequestKind::Writeback, line)
    }

    /// Shorthand for a test-and-set request.
    pub fn test_and_set(line: LineAddr) -> Self {
        Request::new(RequestKind::TestAndSet, line)
    }
}

/// The statistical workload of the paper's evaluation (§5).
///
/// Processors alternate between *thinking* (computing out of their caches)
/// and issuing one blocking bus request. The probabilities mirror the
/// Figure 2 caption: "The probability that the requested data is in global
/// state unmodified is 80 percent, and the probability that an invalidation
/// operation is required for a write miss to unmodified data is 20 percent."
///
/// The generator is *state-conditioned*: it draws the target class (e.g.
/// "a line currently modified in a remote cache") and then picks a concrete
/// line in that state, so the configured probabilities hold exactly rather
/// than emerging from an unknown steady state.
///
/// # Example
///
/// ```
/// use multicube::SyntheticSpec;
///
/// // 25 bus requests per millisecond per processor = 40 us of think time.
/// let spec = SyntheticSpec::default().with_request_rate_per_ms(25.0);
/// assert!((spec.mean_think_ns - 40_000.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Mean think time between requests (ns); requests are non-overlapping.
    pub mean_think_ns: f64,
    /// Fraction of bus requests that are writes (READ-MOD).
    pub p_write: f64,
    /// Probability the requested line is in global state unmodified.
    pub p_unmodified: f64,
    /// Of write misses to unmodified data, the fraction that target lines
    /// with shared copies in other caches (and therefore actually
    /// invalidate something).
    pub p_invalidation: f64,
    /// Fraction of writes issued as ALLOCATE (write-whole-line hint).
    pub p_allocate: f64,
    /// Number of shared lines the workload touches.
    pub shared_lines: u64,
}

impl Default for SyntheticSpec {
    /// The Figure 2 parameter set at a moderate request rate
    /// (10 requests/ms/processor).
    fn default() -> Self {
        SyntheticSpec {
            mean_think_ns: 100_000.0,
            p_write: 0.3,
            p_unmodified: 0.8,
            p_invalidation: 0.2,
            p_allocate: 0.0,
            shared_lines: 4096,
        }
    }
}

impl SyntheticSpec {
    /// Sets the mean think time from a bus-request rate in requests per
    /// millisecond per processor (the x-axis of Figures 2–4).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    #[must_use]
    pub fn with_request_rate_per_ms(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "request rate must be positive");
        self.mean_think_ns = 1_000_000.0 / rate;
        self
    }

    /// Sets the write fraction.
    #[must_use]
    pub fn with_p_write(mut self, p: f64) -> Self {
        self.p_write = p;
        self
    }

    /// Sets the probability the target is in global state unmodified.
    #[must_use]
    pub fn with_p_unmodified(mut self, p: f64) -> Self {
        self.p_unmodified = p;
        self
    }

    /// Sets the invalidation probability for write misses to unmodified
    /// data (the Figure 3 sweep parameter).
    #[must_use]
    pub fn with_p_invalidation(mut self, p: f64) -> Self {
        self.p_invalidation = p;
        self
    }

    /// Sets the ALLOCATE fraction of writes.
    #[must_use]
    pub fn with_p_allocate(mut self, p: f64) -> Self {
        self.p_allocate = p;
        self
    }

    /// Sets the shared working-set size in lines.
    #[must_use]
    pub fn with_shared_lines(mut self, lines: u64) -> Self {
        self.shared_lines = lines;
        self
    }

    /// The offered bus-request rate in requests/ms/processor.
    pub fn request_rate_per_ms(&self) -> f64 {
        1_000_000.0 / self.mean_think_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_constructors() {
        let line = LineAddr::new(3);
        assert_eq!(Request::read(line).kind, RequestKind::Read);
        assert_eq!(Request::write(line).kind, RequestKind::Write);
        assert_eq!(Request::allocate(line).kind, RequestKind::Allocate);
        assert_eq!(Request::writeback(line).kind, RequestKind::Writeback);
        assert_eq!(Request::test_and_set(line).kind, RequestKind::TestAndSet);
        assert_eq!(Request::new(RequestKind::Writeback, line).line, line);
    }

    #[test]
    fn default_spec_matches_figure2_caption() {
        let s = SyntheticSpec::default();
        assert_eq!(s.p_unmodified, 0.8);
        assert_eq!(s.p_invalidation, 0.2);
    }

    #[test]
    fn rate_roundtrip() {
        let s = SyntheticSpec::default().with_request_rate_per_ms(25.0);
        assert!((s.request_rate_per_ms() - 25.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_panics() {
        let _ = SyntheticSpec::default().with_request_rate_per_ms(0.0);
    }

    #[test]
    fn builders_apply() {
        let s = SyntheticSpec::default()
            .with_p_write(0.5)
            .with_p_unmodified(0.6)
            .with_p_invalidation(0.4)
            .with_p_allocate(0.1)
            .with_shared_lines(128);
        assert_eq!(s.p_write, 0.5);
        assert_eq!(s.p_unmodified, 0.6);
        assert_eq!(s.p_invalidation, 0.4);
        assert_eq!(s.p_allocate, 0.1);
        assert_eq!(s.shared_lines, 128);
    }
}
