//! An arbitrated broadcast bus.
//!
//! Each bus serves one operation at a time; which queued operation starts
//! next is decided by an [`Arbitration`] policy. The default
//! [`Arbitration::Fcfs`] grants in strict arrival order (the paper's
//! queueing assumption); [`Arbitration::RoundRobin`] rotates the grant
//! among requesters, the classic fairness discipline compared against
//! FCFS by Nikolov & Lerato. The machine owns the event queue, so the bus
//! only does resource bookkeeping: it reports when an enqueued operation
//! starts and the machine schedules the completion event.

use multicube_sim::stats::{BusyTracker, Counter};
use multicube_sim::SimTime;
use multicube_topology::BusId;
use std::collections::VecDeque;

use crate::proto::BusOp;

/// The bus-grant policy: which queued operation starts when the bus frees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Arbitration {
    /// First-come-first-served: grants follow arrival order exactly. This
    /// is the paper's queueing assumption and the default — the machine's
    /// event stream under FCFS is bit-identical to the pre-seam bus.
    #[default]
    Fcfs,
    /// Round-robin by requester: when the bus frees, the waiting requester
    /// closest (in cyclic node order) after the last-granted requester is
    /// served next; a requester's own operations stay in FIFO order. A
    /// single chatty node can no longer monopolize consecutive grants.
    RoundRobin,
}

impl Arbitration {
    /// Short label for tables and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Arbitration::Fcfs => "fcfs",
            Arbitration::RoundRobin => "round-robin",
        }
    }

    /// Both policies, in comparison order.
    pub fn all() -> [Arbitration; 2] {
        [Arbitration::Fcfs, Arbitration::RoundRobin]
    }
}

/// One bus: a single-server FIFO queue over broadcast operations.
///
/// # Example
///
/// ```
/// use multicube::bus::Bus;
/// use multicube::proto::{BusOp, OpKind, TxnId};
/// use multicube_mem::LineAddr;
/// use multicube_sim::SimTime;
/// use multicube_topology::{BusId, NodeId};
///
/// let mut bus = Bus::new(BusId::row(0));
/// let op = BusOp::new(OpKind::ReadRowRequest, LineAddr::new(1), NodeId::new(0), TxnId(1));
/// // Idle bus: the op starts immediately and completes 50ns later.
/// let done = bus.enqueue(op, 50, SimTime::ZERO).unwrap();
/// assert_eq!(done, SimTime::from_nanos(50));
/// let (finished, next) = bus.complete(done);
/// assert_eq!(finished.kind, OpKind::ReadRowRequest);
/// assert!(next.is_none());
/// ```
#[derive(Debug)]
pub struct Bus {
    id: BusId,
    arbitration: Arbitration,
    /// Requester index of the most recently granted operation (round-robin
    /// scan origin).
    last_granted: u32,
    queue: VecDeque<(BusOp, u64)>,
    in_flight: Option<(BusOp, SimTime)>,
    busy: BusyTracker,
    ops: Counter,
    data_ops: Counter,
    duplicates: Counter,
    queued_high_water: usize,
}

impl Bus {
    /// Creates an idle FCFS bus.
    pub fn new(id: BusId) -> Self {
        Bus::with_arbitration(id, Arbitration::Fcfs)
    }

    /// Creates an idle bus with the given grant policy.
    pub fn with_arbitration(id: BusId, arbitration: Arbitration) -> Self {
        Bus {
            id,
            arbitration,
            last_granted: u32::MAX,
            queue: VecDeque::new(),
            in_flight: None,
            busy: BusyTracker::new(),
            ops: Counter::new(),
            data_ops: Counter::new(),
            duplicates: Counter::new(),
            queued_high_water: 0,
        }
    }

    /// This bus's identity.
    pub fn id(&self) -> BusId {
        self.id
    }

    /// This bus's grant policy.
    pub fn arbitration(&self) -> Arbitration {
        self.arbitration
    }

    /// Enqueues `op` with the given bus occupancy in nanoseconds.
    ///
    /// Returns `Some(completion_time)` if the bus was idle and the
    /// operation starts immediately — the caller must schedule a completion
    /// event for that instant. Returns `None` if the operation was queued
    /// behind others; it will start when [`Bus::complete`] retires its
    /// predecessors.
    pub fn enqueue(&mut self, op: BusOp, duration_ns: u64, now: SimTime) -> Option<SimTime> {
        if self.in_flight.is_none() {
            let done = now + duration_ns;
            self.start(op, done, now);
            Some(done)
        } else {
            self.queue.push_back((op, duration_ns));
            self.queued_high_water = self.queued_high_water.max(self.queue.len());
            None
        }
    }

    /// Enqueues an injected duplicate of an operation, counting it in this
    /// bus's duplicate telemetry. Scheduling semantics are identical to
    /// [`Bus::enqueue`] — the copy occupies the bus like any real op.
    pub fn enqueue_duplicate(
        &mut self,
        op: BusOp,
        duration_ns: u64,
        now: SimTime,
    ) -> Option<SimTime> {
        self.duplicates.incr();
        self.enqueue(op, duration_ns, now)
    }

    fn start(&mut self, op: BusOp, done: SimTime, now: SimTime) {
        self.busy.set_busy(now);
        self.ops.incr();
        if op.streams_data() {
            self.data_ops.incr();
        }
        self.last_granted = op.originator.index();
        self.in_flight = Some((op, done));
    }

    /// Picks the next queued operation according to the arbitration policy.
    fn grant(&mut self) -> Option<(BusOp, u64)> {
        match self.arbitration {
            Arbitration::Fcfs => self.queue.pop_front(),
            Arbitration::RoundRobin => {
                // The waiting requester cyclically closest after the last
                // grant wins; among equal requesters the earliest-queued
                // operation wins (min_by_key keeps the first minimum), so
                // each node's stream stays FIFO.
                let origin = self.last_granted.wrapping_add(1);
                let pos = self
                    .queue
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (op, _))| op.originator.index().wrapping_sub(origin))
                    .map(|(i, _)| i)?;
                self.queue.remove(pos)
            }
        }
    }

    /// Retires the in-flight operation at `now`, returning it together with
    /// the completion time of the next queued operation if one starts.
    ///
    /// # Panics
    ///
    /// Panics if no operation is in flight or `now` is not its completion
    /// time — the machine's event bookkeeping must be exact.
    pub fn complete(&mut self, now: SimTime) -> (BusOp, Option<SimTime>) {
        let (op, done) = self.in_flight.take().expect("no operation in flight");
        assert_eq!(done, now, "completion event fired at the wrong time");
        match self.grant() {
            Some((next, dur)) => {
                let next_done = now + dur;
                self.start(next, next_done, now);
                (op, Some(next_done))
            }
            None => {
                self.busy.set_idle(now);
                (op, None)
            }
        }
    }

    /// The operation currently occupying the bus.
    pub fn in_flight(&self) -> Option<&BusOp> {
        self.in_flight.as_ref().map(|(op, _)| op)
    }

    /// The scheduled completion instant of the in-flight operation, i.e.
    /// the time at which [`Bus::complete`] must be called for it. `None`
    /// when the bus is idle.
    pub fn in_flight_completion(&self) -> Option<SimTime> {
        self.in_flight.as_ref().map(|(_, done)| *done)
    }

    /// Number of operations waiting behind the in-flight one.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the bus has no work at all.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none() && self.queue.is_empty()
    }

    /// Total operations ever started on this bus.
    pub fn op_count(&self) -> u64 {
        self.ops.get()
    }

    /// Data-streaming operations ever started.
    pub fn data_op_count(&self) -> u64 {
        self.data_ops.get()
    }

    /// Injected duplicate operations ever enqueued.
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates.get()
    }

    /// Highest queue depth observed.
    pub fn queue_high_water(&self) -> usize {
        self.queued_high_water
    }

    /// Busy fraction over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.busy.utilization(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{OpKind, TxnId};
    use multicube_mem::LineAddr;
    use multicube_topology::NodeId;

    fn op(kind: OpKind, seq: u64) -> BusOp {
        BusOp::new(kind, LineAddr::new(seq), NodeId::new(0), TxnId(seq))
    }

    #[test]
    fn idle_bus_starts_immediately() {
        let mut bus = Bus::new(BusId::row(1));
        let done = bus.enqueue(op(OpKind::ReadRowRequest, 1), 100, SimTime::ZERO);
        assert_eq!(done, Some(SimTime::from_nanos(100)));
        assert!(bus.in_flight().is_some());
        assert_eq!(bus.queue_len(), 0);
    }

    #[test]
    fn busy_bus_queues_fifo() {
        let mut bus = Bus::new(BusId::column(0));
        let t0 = SimTime::ZERO;
        let first_done = bus.enqueue(op(OpKind::ReadRowRequest, 1), 50, t0).unwrap();
        assert!(bus.enqueue(op(OpKind::ReadRowRequest, 2), 60, t0).is_none());
        assert!(bus.enqueue(op(OpKind::ReadRowRequest, 3), 70, t0).is_none());
        assert_eq!(bus.queue_len(), 2);

        let (f1, next) = bus.complete(first_done);
        assert_eq!(f1.txn, TxnId(1));
        let second_done = next.unwrap();
        assert_eq!(second_done, SimTime::from_nanos(110));

        let (f2, next) = bus.complete(second_done);
        assert_eq!(f2.txn, TxnId(2));
        let third_done = next.unwrap();
        assert_eq!(third_done, SimTime::from_nanos(180));

        let (f3, next) = bus.complete(third_done);
        assert_eq!(f3.txn, TxnId(3));
        assert!(next.is_none());
        assert!(bus.is_idle());
    }

    #[test]
    fn utilization_counts_only_busy_time() {
        let mut bus = Bus::new(BusId::row(0));
        let done = bus
            .enqueue(op(OpKind::ReadRowRequest, 1), 100, SimTime::ZERO)
            .unwrap();
        bus.complete(done);
        // Busy [0,100), idle [100,400): 25%.
        assert!((bus.utilization(SimTime::from_nanos(400)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn counters_distinguish_data_ops() {
        let mut bus = Bus::new(BusId::row(0));
        let d1 = bus
            .enqueue(op(OpKind::ReadRowRequest, 1), 50, SimTime::ZERO)
            .unwrap();
        let mut reply = op(OpKind::ReadRowReply, 2);
        reply.data = Some(multicube_mem::LineVersion::new(1));
        bus.enqueue(reply, 850, SimTime::ZERO);
        let (_, next) = bus.complete(d1);
        bus.complete(next.unwrap());
        assert_eq!(bus.op_count(), 2);
        assert_eq!(bus.data_op_count(), 1);
        assert_eq!(bus.queue_high_water(), 1);
    }

    #[test]
    fn duplicates_queue_like_real_ops_and_are_counted() {
        let mut bus = Bus::new(BusId::row(0));
        let done = bus
            .enqueue(op(OpKind::ReadRowRequest, 1), 50, SimTime::ZERO)
            .unwrap();
        // The duplicate lands right behind the original.
        assert!(bus
            .enqueue_duplicate(op(OpKind::ReadRowRequest, 1), 50, SimTime::ZERO)
            .is_none());
        assert_eq!(bus.duplicate_count(), 1);
        let (_, next) = bus.complete(done);
        assert_eq!(next, Some(SimTime::from_nanos(100)));
        bus.complete(next.unwrap());
        // Both copies occupied the bus and count as started ops.
        assert_eq!(bus.op_count(), 2);
    }

    #[test]
    fn in_flight_completion_is_the_scheduled_completion_instant() {
        let mut bus = Bus::new(BusId::row(0));
        assert_eq!(bus.in_flight_completion(), None);
        // Op starts at t=10 with 100 ns occupancy: completion is t=110,
        // not the start instant.
        let t0 = SimTime::from_nanos(10);
        let done = bus.enqueue(op(OpKind::ReadRowRequest, 1), 100, t0).unwrap();
        assert_eq!(bus.in_flight_completion(), Some(done));
        assert_eq!(done, SimTime::from_nanos(110));
        // A queued successor starts back-to-back at the predecessor's
        // completion: its completion is 110 + 60.
        bus.enqueue(op(OpKind::ReadRowRequest, 2), 60, t0);
        bus.complete(done);
        assert_eq!(bus.in_flight_completion(), Some(SimTime::from_nanos(170)));
        bus.complete(SimTime::from_nanos(170));
        assert_eq!(bus.in_flight_completion(), None);
    }

    fn op_from(node: u32, seq: u64) -> BusOp {
        BusOp::new(
            OpKind::ReadRowRequest,
            LineAddr::new(seq),
            NodeId::new(node),
            TxnId(seq),
        )
    }

    /// Three nodes enqueue while node 0 monopolizes the queue: round-robin
    /// rotates grants (0, 1, 2, then node 0's backlog) instead of serving
    /// arrival order.
    #[test]
    fn round_robin_rotates_among_requesters() {
        let mut bus = Bus::with_arbitration(BusId::row(0), Arbitration::RoundRobin);
        assert_eq!(bus.arbitration(), Arbitration::RoundRobin);
        let t0 = SimTime::ZERO;
        let first = bus.enqueue(op_from(0, 1), 10, t0).unwrap();
        // Arrival order behind the in-flight op: 0, 0, 1, 2.
        bus.enqueue(op_from(0, 2), 10, t0);
        bus.enqueue(op_from(0, 3), 10, t0);
        bus.enqueue(op_from(1, 4), 10, t0);
        bus.enqueue(op_from(2, 5), 10, t0);

        let mut served = Vec::new();
        let mut next = Some(first);
        while let Some(done) = next {
            let (finished, upcoming) = bus.complete(done);
            served.push(finished.txn.0);
            next = upcoming;
        }
        // txn 1 was in flight; then node 1, node 2, and node 0's FIFO
        // backlog (txns 2, 3) — not the FCFS order 2, 3, 4, 5.
        assert_eq!(served, vec![1, 4, 5, 2, 3]);
    }

    /// Under FCFS the same arrival order is served as-is: the seam's
    /// default is byte-identical to the pre-seam bus.
    #[test]
    fn fcfs_default_serves_arrival_order() {
        let mut bus = Bus::new(BusId::row(0));
        assert_eq!(bus.arbitration(), Arbitration::Fcfs);
        let t0 = SimTime::ZERO;
        let first = bus.enqueue(op_from(0, 1), 10, t0).unwrap();
        bus.enqueue(op_from(0, 2), 10, t0);
        bus.enqueue(op_from(1, 3), 10, t0);
        bus.enqueue(op_from(2, 4), 10, t0);
        let mut served = Vec::new();
        let mut next = Some(first);
        while let Some(done) = next {
            let (finished, upcoming) = bus.complete(done);
            served.push(finished.txn.0);
            next = upcoming;
        }
        assert_eq!(served, vec![1, 2, 3, 4]);
    }

    /// The round-robin scan origin follows the last grant, so a requester
    /// never gets two consecutive grants while others wait.
    #[test]
    fn round_robin_never_grants_twice_while_others_wait() {
        let mut bus = Bus::with_arbitration(BusId::row(0), Arbitration::RoundRobin);
        let t0 = SimTime::ZERO;
        let mut next = bus.enqueue(op_from(3, 0), 10, t0);
        let mut seq = 1u64;
        for _ in 0..4 {
            for node in [0u32, 3] {
                bus.enqueue(op_from(node, seq), 10, t0);
                seq += 1;
            }
        }
        let mut grants = Vec::new();
        while let Some(done) = next {
            let (finished, upcoming) = bus.complete(done);
            grants.push(finished.originator.index());
            next = upcoming;
        }
        for w in grants.windows(2) {
            assert_ne!(
                w[0], w[1],
                "consecutive grants to node {}: {grants:?}",
                w[0]
            );
        }
    }

    #[test]
    #[should_panic(expected = "no operation in flight")]
    fn completing_idle_bus_panics() {
        let mut bus = Bus::new(BusId::row(0));
        bus.complete(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "wrong time")]
    fn completing_at_wrong_time_panics() {
        let mut bus = Bus::new(BusId::row(0));
        bus.enqueue(op(OpKind::ReadRowRequest, 1), 50, SimTime::ZERO);
        bus.complete(SimTime::from_nanos(49));
    }
}
