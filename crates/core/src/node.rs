//! Per-node controller state: the snooping cache, the modified-line-table
//! replica, and the node's outstanding transaction.

use multicube_mem::{CacheGeometry, LineAddr, LineVersion, ModifiedLineTable, SetAssocCache};
use multicube_sim::SimTime;
use multicube_topology::NodeId;
use std::collections::VecDeque;

use crate::driver::RequestKind;
use crate::proto::TxnId;

/// The local mode of a line in a snooping cache.
///
/// "With respect to a particular cache, a line may be in one of three local
/// modes: shared..., modified..., or invalid" (§3). Invalid is represented
/// by absence from the cache. `Reserved` is the §4 SYNC extension: space
/// allocated for a queue-lock line that is not yet writable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineMode {
    /// Global state unmodified; other copies may exist; memory is current.
    Shared,
    /// This cache holds the only copy; memory is stale.
    Modified,
    /// SYNC extension: space reserved while queued for the line.
    Reserved,
}

/// One resident line: its mode and (versioned) contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLine {
    /// Coherence mode.
    pub mode: LineMode,
    /// Opaque contents stamp.
    pub data: LineVersion,
}

/// Why a transaction is waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnPhase {
    /// A local (bus-free) cache access is absorbing its latency.
    Local,
    /// Waiting for the victim's WRITEBACK (COLUMN, REMOVE) to `continue`.
    VictimWriteback,
    /// The row-bus request has been issued; waiting for the reply.
    Requested,
}

/// The node's single outstanding transaction ("Requests are assumed to be
/// non-overlapping", Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outstanding {
    /// Instrumentation id.
    pub txn: TxnId,
    /// What the processor asked for.
    pub kind: RequestKind,
    /// The line concerned.
    pub line: LineAddr,
    /// When the processor issued the request.
    pub issued_at: SimTime,
    /// Current phase.
    pub phase: TxnPhase,
    /// Row-bus request retransmissions (race losses, signal drops).
    pub retries: u32,
    /// Bus operations attributed to this transaction so far.
    pub bus_ops: u32,
    /// The modified victim being written back in the
    /// [`TxnPhase::VictimWriteback`] phase.
    pub victim: Option<LineAddr>,
}

/// Per-node controller: snooping cache, MLT replica, outstanding request.
///
/// The controller is a passive state container; the protocol procedures in
/// [`crate::machine`] mutate it. Public accessors exist for tests and
/// debugging.
#[derive(Debug)]
pub struct Controller {
    node: NodeId,
    row: u32,
    col: u32,
    /// The big DRAM snooping cache. Absence == invalid.
    pub(crate) cache: SetAssocCache<CacheLine>,
    /// The small SRAM processor cache, tags only: a strict subset of the
    /// snooping cache, kept consistent by write-through (§2). `None` when
    /// the L1 level is not modelled.
    pub(crate) proc_cache: Option<SetAssocCache<()>>,
    /// This node's replica of its column's modified line table.
    pub(crate) mlt: ModifiedLineTable,
    /// Recently evicted/purged lines, eligible for snarfing.
    pub(crate) recent: VecDeque<LineAddr>,
    /// The single outstanding processor transaction.
    pub(crate) outstanding: Option<Outstanding>,
    /// Completed transactions by this node.
    pub(crate) completed: u64,
    /// Lines snarfed off snooped buses.
    pub(crate) snarfs: u64,
}

/// Maximum length of the snarf-recency list.
const RECENT_CAP: usize = 16;

impl Controller {
    /// Creates a controller for `node` at grid position `(row, col)`.
    pub fn new(
        node: NodeId,
        row: u32,
        col: u32,
        cache_geometry: CacheGeometry,
        proc_geometry: Option<CacheGeometry>,
        mlt_capacity: usize,
    ) -> Self {
        Controller {
            node,
            row,
            col,
            cache: SetAssocCache::new(cache_geometry),
            proc_cache: proc_geometry.map(SetAssocCache::new),
            mlt: ModifiedLineTable::new(mlt_capacity),
            recent: VecDeque::new(),
            outstanding: None,
            completed: 0,
            snarfs: 0,
        }
    }

    /// This controller's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Grid row.
    pub fn row(&self) -> u32 {
        self.row
    }

    /// Grid column.
    pub fn col(&self) -> u32 {
        self.col
    }

    /// The line's local mode, or `None` if invalid (absent).
    pub fn mode_of(&self, line: &LineAddr) -> Option<LineMode> {
        self.cache.peek(line).map(|l| l.mode)
    }

    /// The line's cached contents, if resident.
    pub fn data_of(&self, line: &LineAddr) -> Option<LineVersion> {
        self.cache.peek(line).map(|l| l.data)
    }

    /// Whether this node's column MLT replica records the line as modified
    /// somewhere in this column.
    pub fn mlt_contains(&self, line: &LineAddr) -> bool {
        self.mlt.contains(line)
    }

    /// The outstanding transaction, if any.
    pub fn outstanding(&self) -> Option<&Outstanding> {
        self.outstanding.as_ref()
    }

    /// Transactions completed by this node.
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// Lines snarfed by this node.
    pub fn snarf_count(&self) -> u64 {
        self.snarfs
    }

    /// Records an eviction/purge for snarf-recency tracking.
    pub(crate) fn note_recent(&mut self, line: LineAddr) {
        if self.recent.contains(&line) {
            return;
        }
        if self.recent.len() >= RECENT_CAP {
            self.recent.pop_front();
        }
        self.recent.push_back(line);
    }

    /// Whether the line was recently held (snarf eligibility, §3: "a line
    /// that is invalid, but was recently contained in the cache, may be
    /// acquired (snarfed) in shared mode as it passes by").
    pub(crate) fn recently_held(&self, line: &LineAddr) -> bool {
        self.recent.contains(line)
    }

    /// Removes a line from the snarf-recency list (it is resident again).
    pub(crate) fn forget_recent(&mut self, line: &LineAddr) {
        if let Some(pos) = self.recent.iter().position(|l| l == line) {
            self.recent.remove(pos);
        }
    }

    /// Marks a resident line invalid (purge), remembering it for snarfing.
    /// Returns the line's prior state if it was resident. The processor
    /// cache loses the line too — it is a strict subset of the snooping
    /// cache (§2).
    pub(crate) fn purge(&mut self, line: &LineAddr) -> Option<CacheLine> {
        let prior = self.cache.remove(line);
        if prior.is_some() {
            self.note_recent(*line);
        }
        if let Some(l1) = self.proc_cache.as_mut() {
            l1.remove(line);
        }
        prior
    }

    /// Whether the processor cache holds the line.
    pub fn l1_contains(&self, line: &LineAddr) -> bool {
        self.proc_cache
            .as_ref()
            .map(|l1| l1.contains(line))
            .unwrap_or(false)
    }

    /// Fills the processor cache with a line (after an access); enforces
    /// the subset property by only filling lines resident in the snooping
    /// cache.
    pub(crate) fn l1_fill(&mut self, line: LineAddr) {
        if !self.cache.contains(&line) {
            return;
        }
        if let Some(l1) = self.proc_cache.as_mut() {
            l1.insert(line, ());
        }
    }

    /// Whether a snarfed line could be inserted without evicting anything,
    /// and without consuming the way reserved for an outstanding miss that
    /// maps to the same set.
    pub(crate) fn can_snarf(&self, line: &LineAddr) -> bool {
        if self.cache.contains(line) {
            return false;
        }
        if self.cache.victim_for(line).is_some() {
            return false; // would evict
        }
        // Don't consume the way reserved for the outstanding miss.
        if let Some(out) = &self.outstanding {
            let sets = self.cache.geometry().sets() as u64;
            if out.phase == TxnPhase::Requested
                && !self.cache.contains(&out.line)
                && out.line.index() % sets == line.index() % sets
            {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> Controller {
        Controller::new(NodeId::new(5), 1, 1, CacheGeometry::new(2, 2), None, 8)
    }

    fn line(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    #[test]
    fn new_controller_is_empty() {
        let c = controller();
        assert_eq!(c.node(), NodeId::new(5));
        assert_eq!((c.row(), c.col()), (1, 1));
        assert_eq!(c.mode_of(&line(0)), None);
        assert!(c.outstanding().is_none());
        assert_eq!(c.completed_count(), 0);
    }

    #[test]
    fn purge_remembers_for_snarfing() {
        let mut c = controller();
        c.cache.insert(
            line(3),
            CacheLine {
                mode: LineMode::Shared,
                data: LineVersion::INITIAL,
            },
        );
        assert!(c.purge(&line(3)).is_some());
        assert!(c.recently_held(&line(3)));
        assert_eq!(c.mode_of(&line(3)), None);
        // Purging an absent line records nothing.
        assert!(c.purge(&line(9)).is_none());
        assert!(!c.recently_held(&line(9)));
    }

    #[test]
    fn recent_list_is_bounded() {
        let mut c = controller();
        for i in 0..100 {
            c.note_recent(line(i));
        }
        assert!(c.recent.len() <= RECENT_CAP);
        assert!(c.recently_held(&line(99)));
        assert!(!c.recently_held(&line(0)));
    }

    #[test]
    fn forget_recent_removes() {
        let mut c = controller();
        c.note_recent(line(1));
        c.forget_recent(&line(1));
        assert!(!c.recently_held(&line(1)));
    }

    #[test]
    fn can_snarf_requires_free_way() {
        let mut c = controller();
        // Fill set 0 (lines 0, 2 with 2-set geometry).
        for i in [0u64, 2] {
            c.cache.insert(
                line(i),
                CacheLine {
                    mode: LineMode::Shared,
                    data: LineVersion::INITIAL,
                },
            );
        }
        assert!(!c.can_snarf(&line(4))); // set 0 full
        assert!(c.can_snarf(&line(1))); // set 1 has room
        assert!(!c.can_snarf(&line(0))); // already resident
    }

    #[test]
    fn can_snarf_respects_reservation() {
        let mut c = controller();
        c.outstanding = Some(Outstanding {
            txn: TxnId(1),
            kind: RequestKind::Read,
            line: line(1), // set 1
            issued_at: SimTime::ZERO,
            phase: TxnPhase::Requested,
            retries: 0,
            bus_ops: 0,
            victim: None,
        });
        // Set 1 is empty (two free ways), but one is reserved: a same-set
        // snarf of a *different* line is still fine (two ways); fill one.
        c.cache.insert(
            line(3),
            CacheLine {
                mode: LineMode::Shared,
                data: LineVersion::INITIAL,
            },
        );
        // Now set 1 has one free way, reserved for line 1.
        assert!(!c.can_snarf(&line(5)));
        // Set 0 unaffected.
        assert!(c.can_snarf(&line(4)));
    }
}
