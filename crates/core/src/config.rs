//! Machine shape, timing and protocol options.

use core::fmt;

use multicube_mem::{CacheGeometry, LineGeometry};
use multicube_topology::{Grid, TopologyError};

use crate::bus::Arbitration;
use crate::fault::{FaultConfigError, FaultPlan, RetryPolicy, Watchdog};

/// Bus and memory timing parameters, all in nanoseconds.
///
/// Defaults are the paper's Figure 2 parameters: "The data is transferred
/// at a rate of 1 bus word every 50 ns. The latency of both the snooping
/// cache and main memory is 750 ns."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Time to transfer one bus word (ns).
    pub word_ns: u64,
    /// Bus occupancy of an address/command-only operation (ns). The paper
    /// notes such operations "are very short, since they contain only an
    /// address and command information"; we charge one bus word.
    pub addr_op_ns: u64,
    /// Snooping-cache access latency before a controller can supply data (ns).
    pub snoop_latency_ns: u64,
    /// Main-memory access latency before a bank can supply data (ns).
    pub memory_latency_ns: u64,
}

impl Default for Timing {
    fn default() -> Self {
        Timing {
            word_ns: 50,
            addr_op_ns: 50,
            snoop_latency_ns: 750,
            memory_latency_ns: 750,
        }
    }
}

impl Timing {
    /// Bus occupancy of a data-carrying operation for a block of
    /// `block_words` words: header plus the streamed block.
    pub fn data_op_ns(&self, block_words: u32) -> u64 {
        self.addr_op_ns + self.word_ns * block_words as u64
    }
}

/// How data replies traverse the (up to) two bus legs back to the
/// requester — the §5 "Techniques for Reducing Bus Latency".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyMode {
    /// Store-and-forward whole blocks; the requester is unblocked when the
    /// final data operation completes. The paper's baseline assumption.
    #[default]
    StoreAndForward,
    /// "Transmitting the requested word first": the requester resumes as
    /// soon as the header and first word of the final reply arrive; the bus
    /// is still occupied for the whole block.
    RequestedWordFirst,
    /// "Send the requested line in small fixed-size pieces": each data
    /// reply is split into pieces of the given number of words, each a
    /// separate bus operation. Reduces per-op bus holding time at the cost
    /// of extra headers. The requester resumes when the piece containing
    /// the requested word (modelled as the first piece) arrives.
    Pieces {
        /// Words per piece; clamped to the block size.
        words: u32,
    },
}

/// Which coherence-protocol engine drives the machine.
///
/// The default [`EngineKind::Multicube`] engine implements the paper's
/// Appendix-A protocol over the two-dimensional grid of row and column
/// buses. The two rival engines model classic single-bus snooping
/// protocols on bus 0 only, so the Multicube's bus hierarchy becomes the
/// experimental variable in a shootout (`figures -- shootout`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// The paper's snooping write-invalidate protocol on the bus grid.
    #[default]
    Multicube,
    /// Write-invalidate MESI on a single shared snooping bus.
    Mesi,
    /// Write-update Dragon on a single shared snooping bus.
    Dragon,
}

impl EngineKind {
    /// Stable lowercase identifier, used in CSV output and CLI labels.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Multicube => "multicube",
            EngineKind::Mesi => "mesi",
            EngineKind::Dragon => "dragon",
        }
    }

    /// All engines, in shootout order.
    pub fn all() -> [EngineKind; 3] {
        [EngineKind::Multicube, EngineKind::Mesi, EngineKind::Dragon]
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors from validating a [`MachineConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum MachineConfigError {
    /// The grid side was invalid.
    Topology(TopologyError),
    /// Block size must be a nonzero power of two.
    BadBlockSize(u32),
    /// Pieces mode needs a nonzero piece size.
    BadPieceSize,
    /// A fault-plan or retry-policy knob was invalid (this subsumes the old
    /// `BadDropProbability`: the drop knob now lives on [`FaultPlan`]).
    Fault(FaultConfigError),
    /// The deprecated `with_signal_drop_probability` shim was combined with
    /// an explicit [`FaultPlan`]: the composition order would silently
    /// decide which drop probability wins, so the mix is rejected. Fold the
    /// drop knob into the plan instead:
    /// `with_fault_plan(FaultPlan::default().with_signal_drop(p))`.
    ConflictingFaultShim,
}

impl fmt::Display for MachineConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineConfigError::Topology(e) => write!(f, "invalid topology: {e}"),
            MachineConfigError::BadBlockSize(b) => {
                write!(f, "block size must be a nonzero power of two, got {b}")
            }
            MachineConfigError::BadPieceSize => write!(f, "piece size must be nonzero"),
            MachineConfigError::Fault(e) => write!(f, "invalid fault configuration: {e}"),
            MachineConfigError::ConflictingFaultShim => write!(
                f,
                "deprecated with_signal_drop_probability cannot be combined with \
                 with_fault_plan; set the drop probability on the FaultPlan via \
                 FaultPlan::with_signal_drop instead"
            ),
        }
    }
}

impl std::error::Error for MachineConfigError {}

impl From<TopologyError> for MachineConfigError {
    fn from(e: TopologyError) -> Self {
        MachineConfigError::Topology(e)
    }
}

impl From<FaultConfigError> for MachineConfigError {
    fn from(e: FaultConfigError) -> Self {
        MachineConfigError::Fault(e)
    }
}

/// Full configuration of a Wisconsin Multicube machine.
///
/// Construct with [`MachineConfig::grid`] and customize via the builder
/// methods, then pass to [`crate::Machine::new`].
///
/// # Example
///
/// ```
/// use multicube::{LatencyMode, MachineConfig};
///
/// let config = MachineConfig::grid(8)
///     .unwrap()
///     .with_block_words(32)
///     .with_latency_mode(LatencyMode::RequestedWordFirst)
///     .with_snarfing(true);
/// assert_eq!(config.topology().num_nodes(), 64);
/// assert_eq!(config.line_geometry().words_per_line(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct MachineConfig {
    grid: Grid,
    timing: Timing,
    block_words: u32,
    snoop_cache: CacheGeometry,
    /// Geometry of the first-level (SRAM) processor cache; `None` disables
    /// the L1 model (all accesses go to the snooping cache).
    processor_cache: Option<CacheGeometry>,
    /// Processor-cache hit latency (ns).
    processor_latency_ns: u64,
    mlt_capacity: usize,
    latency_mode: LatencyMode,
    snarfing: bool,
    /// Which adversarial faults to inject (§3 robustness testing); inert by
    /// default.
    faults: FaultPlan,
    /// Backoff applied to bounce-path retries; immediate by default.
    retry: RetryPolicy,
    /// Livelock/starvation watchdog; defaults to escalating past 256
    /// retries.
    watchdog: Watchdog,
    /// Idealized sharing filter for the invalidation broadcast (ablation).
    broadcast_filter: bool,
    /// When true, the coherence checker runs during the simulation.
    checking: bool,
    /// Run the mid-flight invariant subset every this many delivered
    /// events; 0 disables (the default).
    check_every: u64,
    /// Which protocol engine drives the machine.
    engine: EngineKind,
    /// Bus-grant policy shared by every bus in the machine.
    arbitration: Arbitration,
    /// Whether the deprecated `with_signal_drop_probability` shim ran.
    shim_signal_drop: bool,
    /// Whether `with_fault_plan` installed an explicit plan.
    explicit_fault_plan: bool,
}

impl MachineConfig {
    /// Creates a configuration for an `n x n` grid with the paper's default
    /// parameters: 16-word blocks, 50 ns words, 750 ns latencies, a
    /// generously sized snooping cache and modified line table, no
    /// snarfing, store-and-forward data movement, checking enabled.
    ///
    /// # Errors
    ///
    /// Returns [`MachineConfigError::Topology`] if `n < 2`.
    pub fn grid(n: u32) -> Result<Self, MachineConfigError> {
        Ok(MachineConfig {
            grid: Grid::new(n)?,
            timing: Timing::default(),
            block_words: 16,
            // "a very large (minimum size: 64 DRAMs) cache": the snooping
            // cache is big; default 4096 lines of 4-way associativity.
            snoop_cache: CacheGeometry::new(1024, 4),
            // "a high-performance (SRAM) cache designed with the
            // traditional goal of minimizing memory latency": small and
            // fast relative to the big DRAM snooping cache.
            processor_cache: Some(CacheGeometry::new(64, 2)),
            processor_latency_ns: 10,
            mlt_capacity: 4096,
            latency_mode: LatencyMode::StoreAndForward,
            snarfing: false,
            faults: FaultPlan::default(),
            retry: RetryPolicy::default(),
            watchdog: Watchdog::default(),
            broadcast_filter: false,
            checking: true,
            check_every: 0,
            engine: EngineKind::Multicube,
            arbitration: Arbitration::Fcfs,
            shim_signal_drop: false,
            explicit_fault_plan: false,
        })
    }

    /// Selects the coherence-protocol engine (default
    /// [`EngineKind::Multicube`]). The single-bus engines ignore the grid's
    /// column buses and the Multicube-specific knobs (MLT capacity,
    /// snarfing, broadcast filter, latency modes beyond store-and-forward
    /// occupancy, and the Multicube fault vocabulary).
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the coherency/transfer block size in bus words.
    #[must_use]
    pub fn with_block_words(mut self, words: u32) -> Self {
        self.block_words = words;
        self
    }

    /// Sets the bus and memory timing.
    #[must_use]
    pub fn with_timing(mut self, timing: Timing) -> Self {
        self.timing = timing;
        self
    }

    /// Sets the snooping-cache geometry.
    #[must_use]
    pub fn with_snoop_cache(mut self, geometry: CacheGeometry) -> Self {
        self.snoop_cache = geometry;
        self
    }

    /// Sets (or disables, with `None`) the processor-cache geometry.
    #[must_use]
    pub fn with_processor_cache(mut self, geometry: Option<CacheGeometry>) -> Self {
        self.processor_cache = geometry;
        self
    }

    /// Sets the processor-cache hit latency in nanoseconds.
    #[must_use]
    pub fn with_processor_latency_ns(mut self, ns: u64) -> Self {
        self.processor_latency_ns = ns;
        self
    }

    /// Sets the modified-line-table capacity (entries per column replica).
    #[must_use]
    pub fn with_mlt_capacity(mut self, capacity: usize) -> Self {
        self.mlt_capacity = capacity;
        self
    }

    /// Sets the §5 latency-reduction mode.
    #[must_use]
    pub fn with_latency_mode(mut self, mode: LatencyMode) -> Self {
        self.latency_mode = mode;
        self
    }

    /// Enables or disables snarfing (re-acquiring a recently held line in
    /// shared mode as it passes by on a snooped bus).
    #[must_use]
    pub fn with_snarfing(mut self, on: bool) -> Self {
        self.snarfing = on;
        self
    }

    /// Enables the idealized *sharing filter* ablation: the invalidation
    /// broadcast of a READ-MOD to unmodified data fans out to the rows
    /// only when shared copies actually exist somewhere. The real protocol
    /// always broadcasts (memory cannot know about sharers); this option
    /// reproduces the accounting of the paper's analytical model, where
    /// "the probability that an invalidation operation is required for a
    /// write miss to unmodified data is 20 percent" (Figure 2 caption).
    #[must_use]
    pub fn with_broadcast_filter(mut self, on: bool) -> Self {
        self.broadcast_filter = on;
        self
    }

    /// Installs a fault-injection plan (§3 robustness testing). The default
    /// plan injects nothing.
    ///
    /// Mixing this with the deprecated
    /// [`with_signal_drop_probability`](Self::with_signal_drop_probability)
    /// shim is rejected by [`validate`](Self::validate) — see the shim's
    /// documentation for the migration path.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self.explicit_fault_plan = true;
        self
    }

    /// Sets the retry/backoff policy for bounce-path retransmissions.
    #[must_use]
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Configures the livelock/starvation watchdog.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Sets the probability that a controller drops its modified-signal
    /// responsibility (failure injection exercising the §3 robustness
    /// argument). Must be in `[0, 1)`.
    ///
    /// # Migration
    ///
    /// The drop knob moved onto [`FaultPlan`] in 0.2.0; replace
    ///
    /// ```text
    /// config.with_signal_drop_probability(p)
    /// ```
    ///
    /// with
    ///
    /// ```text
    /// config.with_fault_plan(FaultPlan::default().with_signal_drop(p))
    /// ```
    ///
    /// (or call [`FaultPlan::with_signal_drop`] on the plan you already
    /// build). Combining this shim with an explicit
    /// [`with_fault_plan`](Self::with_fault_plan) call is rejected by
    /// [`validate`](Self::validate) with
    /// [`MachineConfigError::ConflictingFaultShim`]: the builder-order
    /// composition used to silently decide which drop probability won.
    #[deprecated(
        since = "0.2.0",
        note = "use `with_fault_plan(FaultPlan::default().with_signal_drop(p))`"
    )]
    #[must_use]
    pub fn with_signal_drop_probability(mut self, p: f64) -> Self {
        self.faults = self.faults.with_signal_drop(p);
        self.shim_signal_drop = true;
        self
    }

    /// Enables or disables the runtime coherence checker (on by default;
    /// disable for large benchmark sweeps).
    #[must_use]
    pub fn with_checking(mut self, on: bool) -> Self {
        self.checking = on;
        self
    }

    /// Runs the mid-flight coherence-invariant subset
    /// ([`check_midflight`](crate::check::check_midflight)) every `n`
    /// delivered events, panicking on the first violation — catching
    /// transiently-bad states the end-of-run quiescent check would miss.
    /// `0` disables (the default); chaos tests enable it.
    #[must_use]
    pub fn with_check_every(mut self, n: u64) -> Self {
        self.check_every = n;
        self
    }

    /// Selects the bus-grant policy for every bus in the machine (default
    /// [`Arbitration::Fcfs`], the paper's queueing assumption — and the
    /// policy under which the machine's event stream is bit-identical to
    /// the pre-seam implementation).
    #[must_use]
    pub fn with_arbitration(mut self, arbitration: Arbitration) -> Self {
        self.arbitration = arbitration;
        self
    }

    /// Validates the configuration, returning derived line geometry.
    ///
    /// # Errors
    ///
    /// See [`MachineConfigError`].
    pub fn validate(&self) -> Result<LineGeometry, MachineConfigError> {
        let geom = LineGeometry::new(self.block_words)
            .map_err(|e| MachineConfigError::BadBlockSize(e.0))?;
        if let LatencyMode::Pieces { words } = self.latency_mode {
            if words == 0 {
                return Err(MachineConfigError::BadPieceSize);
            }
        }
        if self.shim_signal_drop && self.explicit_fault_plan {
            return Err(MachineConfigError::ConflictingFaultShim);
        }
        self.faults.validate()?;
        self.retry.validate()?;
        // The arena engines have no fault handling: their snoop and retry
        // paths would silently ignore every injected fault, making a
        // "faulted" run indistinguishable from a clean one. Reject the
        // combination instead of letting it lie.
        if self.engine != EngineKind::Multicube && self.faults.is_active() {
            return Err(MachineConfigError::Fault(
                FaultConfigError::UnsupportedByEngine {
                    engine: self.engine.name(),
                },
            ));
        }
        Ok(geom)
    }

    /// The selected coherence-protocol engine.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// The selected bus-grant policy.
    pub fn arbitration(&self) -> Arbitration {
        self.arbitration
    }

    /// The grid topology.
    pub fn topology(&self) -> &Grid {
        &self.grid
    }

    /// The timing parameters.
    pub fn timing(&self) -> Timing {
        self.timing
    }

    /// Block size in bus words.
    pub fn block_words(&self) -> u32 {
        self.block_words
    }

    /// The word-to-line mapping implied by the block size.
    ///
    /// # Panics
    ///
    /// Panics if the block size is invalid; call [`MachineConfig::validate`]
    /// first to report the error gracefully.
    pub fn line_geometry(&self) -> LineGeometry {
        LineGeometry::new(self.block_words).expect("invalid block size")
    }

    /// Snooping-cache geometry.
    pub fn snoop_cache(&self) -> CacheGeometry {
        self.snoop_cache
    }

    /// Processor-cache geometry, if the L1 level is modelled.
    pub fn processor_cache(&self) -> Option<CacheGeometry> {
        self.processor_cache
    }

    /// Processor-cache hit latency (ns).
    pub fn processor_latency_ns(&self) -> u64 {
        self.processor_latency_ns
    }

    /// Modified-line-table capacity.
    pub fn mlt_capacity(&self) -> usize {
        self.mlt_capacity
    }

    /// Latency-reduction mode.
    pub fn latency_mode(&self) -> LatencyMode {
        self.latency_mode
    }

    /// Whether snarfing is enabled.
    pub fn snarfing(&self) -> bool {
        self.snarfing
    }

    /// The fault-injection plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The retry/backoff policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The livelock watchdog configuration.
    pub fn watchdog(&self) -> Watchdog {
        self.watchdog
    }

    /// Modified-signal drop probability.
    #[deprecated(since = "0.2.0", note = "use `fault_plan().signal_drop()`")]
    pub fn signal_drop_probability(&self) -> f64 {
        self.faults.signal_drop()
    }

    /// Whether the idealized broadcast sharing filter is enabled.
    pub fn broadcast_filter(&self) -> bool {
        self.broadcast_filter
    }

    /// Whether runtime coherence checking is enabled.
    pub fn checking(&self) -> bool {
        self.checking
    }

    /// Mid-flight check cadence in delivered events (0 = disabled).
    pub fn check_every(&self) -> u64 {
        self.check_every
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_timing_matches_paper() {
        let t = Timing::default();
        assert_eq!(t.word_ns, 50);
        assert_eq!(t.snoop_latency_ns, 750);
        assert_eq!(t.memory_latency_ns, 750);
        // 16-word block: 50 header + 800 data.
        assert_eq!(t.data_op_ns(16), 850);
    }

    #[test]
    fn grid_config_defaults() {
        let c = MachineConfig::grid(32).unwrap();
        assert_eq!(c.topology().num_nodes(), 1024);
        assert_eq!(c.block_words(), 16);
        assert!(c.checking());
        assert!(!c.snarfing());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_methods_apply() {
        let c = MachineConfig::grid(4)
            .unwrap()
            .with_block_words(8)
            .with_mlt_capacity(16)
            .with_snarfing(true)
            .with_fault_plan(FaultPlan::default().with_signal_drop(0.1))
            .with_retry_policy(RetryPolicy::default().with_backoff(100, 5_000))
            .with_watchdog(Watchdog::default().with_retry_budget(8))
            .with_checking(false);
        assert_eq!(c.block_words(), 8);
        assert_eq!(c.mlt_capacity(), 16);
        assert!(c.snarfing());
        assert_eq!(c.fault_plan().signal_drop(), 0.1);
        assert_eq!(c.retry_policy().backoff_base_ns(), 100);
        assert_eq!(c.watchdog().retry_budget(), 8);
        assert!(!c.checking());
        assert!(c.validate().is_ok());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_drop_probability_shim_still_works() {
        let c = MachineConfig::grid(4)
            .unwrap()
            .with_signal_drop_probability(0.25);
        assert_eq!(c.signal_drop_probability(), 0.25);
        assert_eq!(c.fault_plan().signal_drop(), 0.25);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn default_engine_is_multicube() {
        let c = MachineConfig::grid(4).unwrap();
        assert_eq!(c.engine(), EngineKind::Multicube);
        let c = c.with_engine(EngineKind::Dragon);
        assert_eq!(c.engine(), EngineKind::Dragon);
        assert_eq!(EngineKind::Mesi.name(), "mesi");
        assert_eq!(EngineKind::all().len(), 3);
    }

    #[test]
    #[allow(deprecated)]
    fn shim_conflicts_with_explicit_fault_plan() {
        // Shim after an explicit plan: rejected.
        let c = MachineConfig::grid(4)
            .unwrap()
            .with_fault_plan(FaultPlan::default().with_signal_drop(0.1))
            .with_signal_drop_probability(0.25);
        assert_eq!(c.validate(), Err(MachineConfigError::ConflictingFaultShim));
        // Shim before an explicit plan: equally rejected — order must not
        // silently pick a winner.
        let c = MachineConfig::grid(4)
            .unwrap()
            .with_signal_drop_probability(0.25)
            .with_fault_plan(FaultPlan::default());
        assert_eq!(c.validate(), Err(MachineConfigError::ConflictingFaultShim));
        assert!(!MachineConfigError::ConflictingFaultShim
            .to_string()
            .is_empty());
    }

    #[test]
    fn validation_rejects_bad_block() {
        let c = MachineConfig::grid(4).unwrap().with_block_words(12);
        assert_eq!(c.validate(), Err(MachineConfigError::BadBlockSize(12)));
    }

    #[test]
    fn validation_rejects_bad_pieces() {
        let c = MachineConfig::grid(4)
            .unwrap()
            .with_latency_mode(LatencyMode::Pieces { words: 0 });
        assert_eq!(c.validate(), Err(MachineConfigError::BadPieceSize));
    }

    #[test]
    fn validation_rejects_bad_fault_plan() {
        let c = MachineConfig::grid(4)
            .unwrap()
            .with_fault_plan(FaultPlan::default().with_signal_drop(1.0));
        assert!(matches!(
            c.validate(),
            Err(MachineConfigError::Fault(
                FaultConfigError::BadProbability {
                    knob: "signal_drop",
                    ..
                }
            ))
        ));
    }

    #[test]
    fn validation_rejects_bad_backoff() {
        let c = MachineConfig::grid(4)
            .unwrap()
            .with_retry_policy(RetryPolicy::default().with_backoff(500, 100));
        assert!(matches!(
            c.validate(),
            Err(MachineConfigError::Fault(
                FaultConfigError::BadBackoff { .. }
            ))
        ));
    }

    #[test]
    fn arena_engines_reject_active_fault_plans() {
        for engine in [EngineKind::Mesi, EngineKind::Dragon] {
            let c = MachineConfig::grid(4)
                .unwrap()
                .with_engine(engine)
                .with_fault_plan(FaultPlan::default().with_op_loss(0.1));
            assert_eq!(
                c.validate(),
                Err(MachineConfigError::Fault(
                    FaultConfigError::UnsupportedByEngine {
                        engine: engine.name()
                    }
                )),
                "{engine}: active plan must be rejected"
            );
            // An explicitly installed *inert* plan is fine.
            let c = MachineConfig::grid(4)
                .unwrap()
                .with_engine(engine)
                .with_fault_plan(FaultPlan::default());
            assert!(c.validate().is_ok(), "{engine}: inert plan is allowed");
        }
        // The default engine keeps full fault support.
        let c = MachineConfig::grid(4)
            .unwrap()
            .with_fault_plan(FaultPlan::default().with_op_loss(0.1));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn check_every_defaults_off_and_round_trips() {
        let c = MachineConfig::grid(4).unwrap();
        assert_eq!(c.check_every(), 0);
        let c = c.with_check_every(64);
        assert_eq!(c.check_every(), 64);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn topology_error_propagates() {
        assert!(matches!(
            MachineConfig::grid(1),
            Err(MachineConfigError::Topology(_))
        ));
    }
}
