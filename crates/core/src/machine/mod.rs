//! The machine: event loop, bus plumbing, and the protocol engine.
//!
//! The protocol procedures of Appendix A are implemented in the submodules
//! ([`read` handlers](self), READ-MOD, WRITE-BACK and test-and-set), one
//! Rust function per formal procedure, dispatched from the single event
//! loop here. All state mutation happens at bus-operation completion
//! instants, mirroring the paper's "on a bus operation, all nodes on the
//! bus ... execute the appropriate procedure".

pub mod engine;
mod readmod;
mod readops;
mod start;
mod synthetic;
mod tas;
mod writeback;

use std::collections::VecDeque;

use multicube_mem::{LineAddr, LineGeometry, LineMap, LineVersion, MemoryBank};
use multicube_sim::{DeterministicRng, EventQueue, SimDuration, SimTime};
use multicube_topology::NodeId;

use crate::bus::Bus;
use crate::check::CoherenceViolation;
use crate::config::{LatencyMode, MachineConfig, MachineConfigError};
use crate::driver::{Request, RequestKind, SyntheticSpec};
use crate::fault::{FaultInjector, WatchdogAction};
use crate::metrics::{MachineMetrics, RunReport, Served};
use crate::node::{Controller, LineMode, Outstanding};
use crate::proto::{BusOp, OpClass, OpFault, OpKind, Piece, TxnId};
use crate::trace::{TraceEvent, TracePoint, TraceSink};

pub(crate) use synthetic::SyntheticState;

/// A completed processor transaction, as reported by [`Machine::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The node whose transaction completed.
    pub node: NodeId,
    /// The transaction id.
    pub txn: TxnId,
    /// The request kind.
    pub kind: RequestKind,
    /// The line concerned.
    pub line: LineAddr,
    /// Test-and-set outcome (`true` for every other kind).
    pub success: bool,
    /// End-to-end latency.
    pub latency: SimDuration,
    /// Completion instant.
    pub at: SimTime,
}

/// Error from [`Machine::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The node already has an outstanding transaction (requests are
    /// non-overlapping).
    Busy,
}

impl core::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SubmitError::Busy => write!(f, "node already has an outstanding transaction"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Events driving the machine.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// The in-flight operation on bus `slot` completed.
    BusComplete { slot: usize },
    /// A delayed emission (cache/memory access latency elapsed).
    Emit { slot: usize, op: BusOp },
    /// A processor issues a request (`None` = generate from the synthetic
    /// workload spec).
    Issue {
        node: NodeId,
        request: Option<Request>,
    },
    /// A local (bus-free) access finished its cache latency.
    LocalDone { node: NodeId },
    /// Requested-word-first early unblock of the originator.
    EarlyComplete {
        node: NodeId,
        txn: TxnId,
        data: Option<LineVersion>,
    },
}

/// Per-transaction bookkeeping (instrumentation plus idempotence guards).
#[derive(Debug, Clone)]
pub(crate) struct TxnInfo {
    pub node: NodeId,
    pub kind: RequestKind,
    pub line: LineAddr,
    pub start: SimTime,
    pub bus_ops: u32,
    pub row_ops: u32,
    pub col_ops: u32,
    pub retries: u32,
    /// Total backoff delay inserted before this transaction's retries (ns).
    pub backoff_ns: u64,
    pub served: Served,
    /// The originator's cache write has been applied (early-unblock guard).
    pub installed: bool,
    /// A purge for this line swept past while the read reply was in
    /// flight: the reply data is stale and must be discarded and the
    /// request retried (see `poison_readers`).
    pub poisoned: bool,
    /// Fill the processor cache on completion (word-level accesses).
    pub fill_l1: bool,
    /// The transaction has completed.
    pub done: bool,
}

/// Consolidated per-line protocol registry entry.
///
/// The machine used to keep five parallel `HashMap<LineAddr, _>`s (owner,
/// sharer count, in-flight interest, committed version, sync word); most
/// protocol events touch several of them for the same line, so each event
/// paid several hash lookups. One entry per line makes that a single
/// lookup. Entries are created on first touch and never removed — absent
/// fields read as their defaults (no owner, zero sharers, `INITIAL`
/// version, zero sync word), exactly like a missing map entry did.
#[derive(Debug, Clone, Default)]
pub(crate) struct LineEntry {
    /// Which cache (if any) holds the line modified.
    owner: Option<NodeId>,
    /// Position in [`Machine::owned_list`] while `owner` is `Some`.
    owned_pos: usize,
    /// Number of caches holding the line shared.
    sharers: u32,
    /// Number of nodes with an outstanding transaction on the line — the
    /// index behind [`Machine::line_has_inflight_interest`], kept
    /// consistent by [`Machine::set_outstanding`] /
    /// [`Machine::clear_outstanding`].
    inflight: u32,
    /// Latest committed write (value-integrity checking).
    committed: LineVersion,
    /// The designated synchronization word of the line (§4).
    sync_word: u64,
}

/// A simulated Wisconsin Multicube.
///
/// Drive it either with the closed-loop synthetic workload
/// ([`Machine::run_synthetic`]) or transaction by transaction
/// ([`Machine::submit`] / [`Machine::advance`]) — the latter is how the
/// synchronization and application layers are built.
///
/// # Example
///
/// ```
/// use multicube::{Machine, MachineConfig, Request};
/// use multicube_mem::LineAddr;
/// use multicube_topology::NodeId;
///
/// let mut m = Machine::new(MachineConfig::grid(2).unwrap(), 7).unwrap();
/// let writer = NodeId::new(0);
/// m.submit(writer, Request::write(LineAddr::new(4))).unwrap();
/// let done = m.advance().expect("write completes");
/// assert_eq!(done.node, writer);
///
/// // The other corner of the grid reads it back.
/// let reader = NodeId::new(3);
/// m.submit(reader, Request::read(LineAddr::new(4))).unwrap();
/// let done = m.advance().expect("read completes");
/// assert!(done.latency.as_nanos() > 0);
/// m.check_coherence().unwrap();
/// ```
#[derive(Debug)]
pub struct Machine {
    pub(crate) config: MachineConfig,
    pub(crate) geom: LineGeometry,
    pub(crate) n: u32,
    pub(crate) events: EventQueue<Event>,
    /// Buses: slots `0..n` are row buses, `n..2n` are column buses.
    pub(crate) buses: Vec<Bus>,
    pub(crate) controllers: Vec<Controller>,
    /// One memory bank per column.
    pub(crate) memories: Vec<MemoryBank>,
    pub(crate) rng: DeterministicRng,
    txn_seq: u64,
    version_seq: u64,
    /// Per-transaction bookkeeping: a slab indexed by `TxnId - 1` (ids are
    /// the dense 1-based issue sequence minted by [`Machine::new_txn`]).
    txns: Vec<TxnInfo>,
    /// The per-line protocol registry (see [`LineEntry`]).
    lines: LineMap<LineEntry>,
    /// Sampling support: all currently owned lines.
    pub(crate) owned_list: Vec<LineAddr>,
    pub(crate) metrics: MachineMetrics,
    /// Batched same-timestamp drain: `pop_batch` fills this with every
    /// event due at one instant in one wheel touch; `batch_pos` is the
    /// read cursor. Events a handler schedules for the same instant land
    /// behind the batch in FIFO order, exactly as one-at-a-time popping
    /// would deliver them.
    batch: Vec<Event>,
    batch_pos: usize,
    /// Events delivered so far (drives the `check_every` cadence).
    delivered: u64,
    completions: VecDeque<Completion>,
    pub(crate) synthetic: Option<SyntheticState>,
    /// Structured trace destination, chosen once at construction.
    trace: TraceSink,
    /// Fault-injection decision engine (inert under the default plan).
    pub(crate) faults: FaultInjector,
    /// Single-bus arena state (MESI/Dragon engines): which node holds each
    /// line in Dragon's shared-modified (`Sm`) state. Empty under the
    /// Multicube engine.
    pub(crate) arena_sm: LineMap<NodeId>,
    /// Which node holds each line exclusive-clean (`E`, [`LineMode::
    /// Reserved`]) under a single-bus engine; the registry does not track
    /// Reserved copies, and the arena engines need O(1) snoop decisions.
    pub(crate) arena_excl: LineMap<NodeId>,
}

impl Machine {
    /// Builds a machine from a validated configuration and an RNG seed.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn new(config: MachineConfig, seed: u64) -> Result<Self, MachineConfigError> {
        let geom = config.validate()?;
        let grid = config.topology().clone();
        let n = grid.side();
        let buses = (0..n)
            .map(multicube_topology::BusId::row)
            .chain((0..n).map(multicube_topology::BusId::column))
            .map(|id| Bus::with_arbitration(id, config.arbitration()))
            .collect();
        let controllers = grid
            .nodes()
            .map(|node| {
                Controller::new(
                    node,
                    grid.row_of(node),
                    grid.col_of(node),
                    config.snoop_cache(),
                    config.processor_cache(),
                    config.mlt_capacity(),
                )
            })
            .collect();
        let memories = (0..n).map(|_| MemoryBank::new()).collect();
        let faults = FaultInjector::new(
            *config.fault_plan(),
            config.retry_policy(),
            config.watchdog(),
            (n * n) as usize,
            seed,
        );
        Ok(Machine {
            geom,
            n,
            events: EventQueue::new(),
            buses,
            controllers,
            memories,
            rng: DeterministicRng::seed(seed),
            txn_seq: 0,
            version_seq: 0,
            txns: Vec::new(),
            lines: LineMap::default(),
            owned_list: Vec::new(),
            metrics: MachineMetrics::default(),
            batch: Vec::new(),
            batch_pos: 0,
            delivered: 0,
            completions: VecDeque::new(),
            synthetic: None,
            trace: TraceSink::from_env(),
            faults,
            arena_sm: LineMap::default(),
            arena_excl: LineMap::default(),
            config,
        })
    }

    /// Replaces the trace sink (see [`crate::trace`]). The environment is
    /// consulted only at construction; this overrides that choice.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// The current trace sink.
    pub fn trace_sink(&self) -> &TraceSink {
        &self.trace
    }

    /// The events buffered by a ring-buffer trace sink (empty otherwise).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.events()
    }

    /// Records an operation-shaped trace event if tracing is enabled.
    #[inline]
    fn trace_op(&mut self, point: TracePoint, slot: usize, op: &BusOp) {
        if self.trace.is_enabled() {
            let ev = TraceEvent {
                at: self.now(),
                point,
                bus: Some(self.buses[slot].id()),
                kind: Some(op.kind),
                line: op.line,
                originator: Some(op.originator),
                txn: Some(op.txn),
                piece: op.piece,
                data: op.data,
            };
            self.trace.record(ev);
        }
    }

    /// Records a decision-point trace event if tracing is enabled.
    #[inline]
    pub(crate) fn trace_point(
        &mut self,
        point: TracePoint,
        bus: Option<usize>,
        line: LineAddr,
        originator: Option<NodeId>,
        txn: Option<TxnId>,
    ) {
        if self.trace.is_enabled() {
            let ev = TraceEvent {
                at: self.now(),
                point,
                bus: bus.map(|slot| self.buses[slot].id()),
                kind: None,
                line,
                originator,
                txn,
                piece: None,
                data: None,
            };
            self.trace.record(ev);
        }
    }

    // ------------------------------------------------------------------
    // Public API
    // ------------------------------------------------------------------

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Grid side `n`.
    pub fn side(&self) -> u32 {
        self.n
    }

    /// The word-to-line geometry implied by the block size.
    pub fn line_geometry(&self) -> multicube_mem::LineGeometry {
        self.geom
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &MachineMetrics {
        &self.metrics
    }

    /// Total (row, column) bus operations started so far.
    pub fn bus_op_totals(&self) -> (u64, u64) {
        let n = self.n as usize;
        let row = self.buses[..n].iter().map(|b| b.op_count()).sum();
        let col = self.buses[n..].iter().map(|b| b.op_count()).sum();
        (row, col)
    }

    /// The controller of `node` (inspection/testing).
    pub fn controller(&self, node: NodeId) -> &Controller {
        &self.controllers[node.as_usize()]
    }

    /// The memory bank of column `col`.
    pub fn memory(&self, col: u32) -> &MemoryBank {
        &self.memories[col as usize]
    }

    /// The bus at `slot` (`0..n` are row buses, `n..2n` column buses).
    pub fn bus(&self, slot: usize) -> &crate::bus::Bus {
        &self.buses[slot]
    }

    /// The home column of `line`.
    pub fn home_column(&self, line: LineAddr) -> u32 {
        self.config.topology().home_column(line.index())
    }

    /// The latest committed write version of `line` (INITIAL if unwritten).
    pub fn committed_version(&self, line: LineAddr) -> LineVersion {
        self.lines
            .get(&line)
            .map(|e| e.committed)
            .unwrap_or(LineVersion::INITIAL)
    }

    /// Reads `line`'s synchronization word (the §4 designated word).
    pub fn sync_word(&self, line: LineAddr) -> u64 {
        self.lines.get(&line).map(|e| e.sync_word).unwrap_or(0)
    }

    /// Writes `line`'s synchronization word from `node`, which must hold
    /// the line modified (a local write to an owned line; no bus traffic).
    ///
    /// # Errors
    ///
    /// Returns `Err(())`-like [`SubmitError::Busy`]? No — returns `false`
    /// when the node does not hold the line modified; the caller must
    /// acquire ownership first (e.g. with a write request).
    pub fn write_sync_word(&mut self, node: NodeId, line: LineAddr, value: u64) -> bool {
        let holds = self.controllers[node.as_usize()].mode_of(&line) == Some(LineMode::Modified);
        if !holds {
            return false;
        }
        self.line_entry(line).sync_word = value;
        let v = self.next_version(line);
        if let Some(cl) = self.controllers[node.as_usize()].cache.peek_mut(&line) {
            cl.data = v;
        }
        true
    }

    /// Submits a request for `node`, which must be idle.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] if the node has an outstanding transaction.
    pub fn submit(&mut self, node: NodeId, request: Request) -> Result<TxnId, SubmitError> {
        if self.controllers[node.as_usize()].outstanding().is_some() {
            return Err(SubmitError::Busy);
        }
        Ok(self.start_request(node, request))
    }

    /// Submits a *word-level* access through the two-level cache
    /// hierarchy (§2): a read that hits the processor cache completes
    /// after the (small) L1 latency with no snooping-cache involvement;
    /// everything else goes through the snooping cache and, on a miss, the
    /// bus protocol. Writes are written through — they always reach the
    /// snooping cache, which must hold the line modified. The processor
    /// cache is filled on completion and remains a strict subset of the
    /// snooping cache.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] if the node has an outstanding transaction.
    pub fn submit_word(
        &mut self,
        node: NodeId,
        word: multicube_mem::WordAddr,
        is_write: bool,
    ) -> Result<TxnId, SubmitError> {
        if self.controllers[node.as_usize()].outstanding().is_some() {
            return Err(SubmitError::Busy);
        }
        let line = self.geom.line_of(word);
        let kind = if is_write {
            RequestKind::Write
        } else {
            RequestKind::Read
        };
        // L1 read hit: bus-free, snoop-cache-free.
        if !is_write && self.controllers[node.as_usize()].l1_contains(&line) {
            let txn = self.new_txn(node, Request::new(kind, line));
            self.metrics.l1_hits.incr();
            // Touch the snooping-cache copy for LRU realism.
            self.controllers[node.as_usize()].cache.get(&line);
            let out = crate::node::Outstanding {
                txn,
                kind,
                line,
                issued_at: self.now(),
                phase: crate::node::TxnPhase::Local,
                retries: 0,
                bus_ops: 0,
                victim: None,
            };
            self.set_outstanding(node.as_usize(), out);
            let delay = self.config.processor_latency_ns();
            self.events.schedule_after(delay, Event::LocalDone { node });
            return Ok(txn);
        }
        let txn = self.start_request(node, Request::new(kind, line));
        if let Some(info) = self.txn_info_mut(txn) {
            info.fill_l1 = true;
        }
        Ok(txn)
    }

    /// Schedules a request to be issued at absolute time `at` (must not be
    /// in the past). The node must be idle when the instant arrives.
    pub fn submit_at(&mut self, node: NodeId, request: Request, at: SimTime) {
        self.events.schedule(
            at,
            Event::Issue {
                node,
                request: Some(request),
            },
        );
    }

    /// The next event in delivery order: the current batch first, then one
    /// batched wheel drain of the earliest pending instant. `None` at
    /// quiescence.
    #[inline]
    pub(crate) fn next_event(&mut self) -> Option<Event> {
        if let Some(ev) = self.batch.get(self.batch_pos) {
            self.batch_pos += 1;
            return Some(*ev);
        }
        self.batch.clear();
        self.batch_pos = 1;
        self.events.pop_batch(&mut self.batch)?;
        Some(self.batch[0])
    }

    /// Whether any event is still pending (batched or in the wheel).
    #[inline]
    pub(crate) fn events_pending(&self) -> bool {
        self.batch_pos < self.batch.len() || !self.events.is_empty()
    }

    /// The instant of the earliest pending event — the current batch (all
    /// due *now*) first, then the wheel. `None` at quiescence.
    #[inline]
    pub fn next_event_time(&self) -> Option<SimTime> {
        if self.batch_pos < self.batch.len() {
            return Some(self.now());
        }
        self.events.peek_time()
    }

    /// Processes every pending event strictly before `horizon`, in exactly
    /// the order a free-running drain would deliver them, then stops. The
    /// conservative parallel driver uses this to advance one plane of the
    /// cube up to its safe horizon.
    pub fn advance_until(&mut self, horizon: SimTime) {
        while self.next_event_time().is_some_and(|t| t < horizon) {
            let ev = self.next_event().expect("event due before horizon");
            self.handle(ev);
        }
    }

    /// Processes events until a transaction completes, returning it;
    /// `None` when the machine goes quiescent first.
    pub fn advance(&mut self) -> Option<Completion> {
        loop {
            if let Some(done) = self.completions.pop_front() {
                return Some(done);
            }
            let ev = self.next_event()?;
            self.handle(ev);
        }
    }

    /// Runs until no events remain, collecting every completion in
    /// delivery order (any completions already buffered are drained
    /// first).
    pub fn run_to_quiescence(&mut self) -> Vec<Completion> {
        let mut out: Vec<Completion> = self.completions.drain(..).collect();
        while let Some(ev) = self.next_event() {
            self.handle(ev);
            out.extend(self.completions.drain(..));
        }
        out
    }

    /// Verifies the coherence invariants of the configured protocol
    /// engine; call at quiescence.
    ///
    /// # Errors
    ///
    /// The first violated invariant.
    pub fn check_coherence(&self) -> Result<(), CoherenceViolation> {
        engine::engine_for(self.config.engine()).check(self)
    }

    /// Runs the closed-loop synthetic workload: every processor issues
    /// `txns_per_node` blocking requests drawn from `spec`, separated by
    /// exponential think times. Returns the run report; panics on a
    /// coherence violation when checking is enabled.
    pub fn run_synthetic(&mut self, spec: &SyntheticSpec, txns_per_node: u64) -> RunReport {
        self.run_synthetic_inner(spec, txns_per_node)
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::BusComplete { slot } => self.on_bus_complete(slot),
            Event::Emit { slot, op } => self.enqueue_now(slot, op),
            Event::Issue { node, request } => self.on_issue(node, request),
            Event::LocalDone { node } => self.on_local_done(node),
            Event::EarlyComplete { node, txn, data } => {
                self.install_and_finish(node, txn, data, true, false)
            }
        }
        self.delivered += 1;
        let every = self.config.check_every();
        if every > 0 && self.delivered.is_multiple_of(every) {
            if let Err(v) = crate::check::check_midflight(self) {
                panic!(
                    "mid-flight coherence violation after {} events at t={}: {v}",
                    self.delivered,
                    self.now()
                );
            }
        }
    }

    fn on_bus_complete(&mut self, slot: usize) {
        let now = self.now();
        let (op, next_done) = self.buses[slot].complete(now);
        if let Some(done) = next_done {
            self.events.schedule(done, Event::BusComplete { slot });
            if let Some(started) = self.buses[slot].in_flight().copied() {
                self.op_started(slot, &started, now);
            }
        }
        // Split transfers: only the final piece triggers the procedure.
        if let Some(p) = op.piece {
            if !p.is_last() {
                if p.index == 0 {
                    self.maybe_piece_unblock(slot, &op);
                }
                let next = BusOp {
                    piece: Some(Piece {
                        index: p.index + 1,
                        of: p.of,
                    }),
                    ..op
                };
                self.note_op(&next);
                self.enqueue_now(slot, next);
                return;
            }
        }
        self.dispatch(slot, op);
    }

    fn dispatch(&mut self, slot: usize, op: BusOp) {
        self.trace_op(TracePoint::OpComplete, slot, &op);
        // Consume injected faults: a faulted copy occupied its bus like any
        // real operation, but its completion must not run the snoop actions.
        match op.fault {
            Some(OpFault::Lost) => {
                // Nobody heard the request; the originator retries (§3).
                self.trace_op(TracePoint::FaultLost, slot, &op);
                self.reissue_row_request(&op);
                return;
            }
            Some(OpFault::Duplicate) => {
                // The original is in flight too; re-acting on the copy could
                // purge live data, so the stutter is consumed silently.
                self.trace_op(TracePoint::FaultDuplicate, slot, &op);
                return;
            }
            None => {}
        }
        // Each dispatched operation is one chance for a controller blackout
        // window to open somewhere in the machine.
        if let Some(node) = self.faults.roll_blackout(self.now()) {
            self.metrics.blackouts.incr();
            let blacked = self.controllers[node].node();
            self.trace_point(
                TracePoint::FaultBlackout,
                Some(slot),
                op.line,
                Some(blacked),
                None,
            );
        }
        engine::engine_for(self.config.engine()).on_op(self, slot, op);
    }

    /// The Appendix-A snoop procedures, one handler per formal operation
    /// signature (the Multicube engine's op routing).
    pub(crate) fn dispatch_multicube(&mut self, slot: usize, op: BusOp) {
        use OpKind::*;
        match op.kind {
            ReadRowRequest => self.on_read_row_request(slot, op),
            ReadColRequestRemove => self.on_read_col_request_remove(slot, op),
            ReadColRequestMemory => self.on_read_col_request_memory(slot, op),
            ReadColReplyUpdate => self.on_read_col_reply_update(slot, op),
            ReadColReplyUpdateMemory => self.on_read_col_reply_update_memory(slot, op),
            ReadColReplyNoPurge => self.on_read_col_reply_nopurge(slot, op),
            ReadRowReply => self.on_read_row_reply(slot, op),
            ReadRowReplyUpdate => self.on_read_row_reply_update(slot, op),
            ReadModRowRequest => self.on_readmod_row_request(slot, op),
            ReadModColRequestRemove => self.on_readmod_col_request_remove(slot, op),
            ReadModColRequestMemory => self.on_readmod_col_request_memory(slot, op),
            ReadModRowReply => self.on_readmod_row_reply(slot, op),
            ReadModColReplyPurge => self.on_readmod_col_reply_purge(slot, op),
            ReadModColReplyInsert => self.on_readmod_col_reply_insert(slot, op),
            ReadModRowReplyPurge => self.on_readmod_row_reply_purge(slot, op),
            ReadModRowPurge => self.on_readmod_row_purge(slot, op),
            ReadModColInsert => self.on_readmod_col_insert(slot, op),
            WritebackColRemove => self.on_writeback_col_remove(slot, op),
            WritebackRowUpdate => self.on_writeback_row_update(slot, op),
            WritebackColUpdateMemory => self.on_writeback_col_update_memory(slot, op),
            TasRowRequest => self.on_tas_row_request(slot, op),
            TasColRequest => self.on_tas_col_request(slot, op),
            TasColRequestMemory => self.on_tas_col_request_memory(slot, op),
            TasRowFail => self.on_tas_row_fail(slot, op),
            TasColFail => self.on_tas_col_fail(slot, op),
            BusRead | BusReadExclusive | BusUpgrade | BusWriteback | BusUpdate => {
                unreachable!("arena op {} dispatched on the Multicube engine", op.kind)
            }
        }
    }

    // ------------------------------------------------------------------
    // Topology helpers
    // ------------------------------------------------------------------

    /// Slot of row bus `row`.
    pub(crate) fn row_slot(&self, row: u32) -> usize {
        row as usize
    }

    /// Slot of column bus `col`.
    pub(crate) fn col_slot(&self, col: u32) -> usize {
        (self.n + col) as usize
    }

    /// The row index a row slot refers to.
    pub(crate) fn slot_row(&self, slot: usize) -> u32 {
        debug_assert!(slot < self.n as usize);
        slot as u32
    }

    /// The column index a column slot refers to.
    pub(crate) fn slot_col(&self, slot: usize) -> u32 {
        debug_assert!(slot >= self.n as usize);
        slot as u32 - self.n
    }

    /// Node id at grid position.
    pub(crate) fn node_at(&self, row: u32, col: u32) -> NodeId {
        self.config.topology().node(row, col)
    }

    /// Node indices on row `row`.
    pub(crate) fn row_nodes(&self, row: u32) -> impl Iterator<Item = usize> + '_ {
        let n = self.n;
        (0..n).map(move |c| (row * n + c) as usize)
    }

    /// Node indices on column `col`.
    pub(crate) fn col_nodes(&self, col: u32) -> impl Iterator<Item = usize> + '_ {
        let n = self.n;
        (0..n).map(move |r| (r * n + col) as usize)
    }

    /// The row of the transaction originator.
    pub(crate) fn origin_row(&self, op: &BusOp) -> u32 {
        self.config.topology().row_of(op.originator)
    }

    /// The column of the transaction originator.
    pub(crate) fn origin_col(&self, op: &BusOp) -> u32 {
        self.config.topology().col_of(op.originator)
    }

    // ------------------------------------------------------------------
    // Registry maintenance (owner / sharer tracking)
    // ------------------------------------------------------------------

    /// The consolidated per-line entry, created on first touch.
    #[inline]
    pub(crate) fn line_entry(&mut self, line: LineAddr) -> &mut LineEntry {
        self.lines.entry(line).or_default()
    }

    pub(crate) fn registry_set_owner(&mut self, line: LineAddr, node: NodeId) {
        let pos = self.owned_list.len();
        let e = self.lines.entry(line).or_default();
        if e.owner.replace(node).is_none() {
            e.owned_pos = pos;
            self.owned_list.push(line);
        }
    }

    pub(crate) fn registry_clear_owner(&mut self, line: LineAddr) {
        let Some(e) = self.lines.get_mut(&line) else {
            return;
        };
        if e.owner.take().is_none() {
            return;
        }
        let pos = e.owned_pos;
        let last = self.owned_list.len() - 1;
        self.owned_list.swap(pos, last);
        self.owned_list.pop();
        if pos < self.owned_list.len() {
            let moved = self.owned_list[pos];
            self.lines
                .get_mut(&moved)
                .expect("owned line has a registry entry")
                .owned_pos = pos;
        }
    }

    /// The cache currently recorded as holding `line` modified.
    pub(crate) fn registry_owner(&self, line: LineAddr) -> Option<NodeId> {
        self.lines.get(&line).and_then(|e| e.owner)
    }

    /// All registry entries (line, owner).
    pub(crate) fn registry_entries(&self) -> impl Iterator<Item = (LineAddr, NodeId)> + '_ {
        self.lines
            .iter()
            .filter_map(|(l, e)| e.owner.map(|n| (*l, n)))
    }

    fn sharers_incr(&mut self, line: LineAddr) {
        self.line_entry(line).sharers += 1;
    }

    fn sharers_decr(&mut self, line: LineAddr) {
        if let Some(e) = self.lines.get_mut(&line) {
            e.sharers = e.sharers.saturating_sub(1);
        }
    }

    /// Number of caches holding `line` shared.
    pub(crate) fn sharer_count(&self, line: LineAddr) -> u32 {
        self.lines.get(&line).map(|e| e.sharers).unwrap_or(0)
    }

    /// Whether any node other than `except` has an outstanding transaction
    /// on `line` (a reply in flight could install a shared copy). Used by
    /// the broadcast sharing-filter ablation to stay conservative.
    ///
    /// Answered in O(1) from the line-keyed [`Self::inflight_interest`]
    /// index rather than scanning all `n^2` controllers.
    pub(crate) fn line_has_inflight_interest(&self, line: LineAddr, except: NodeId) -> bool {
        let count = self.lines.get(&line).map(|e| e.inflight).unwrap_or(0);
        let except_holds = self.controllers[except.as_usize()]
            .outstanding()
            .map(|o| o.line == line)
            .unwrap_or(false);
        let interested = count > u32::from(except_holds);
        #[cfg(debug_assertions)]
        {
            let scanned = self.controllers.iter().any(|c| {
                c.node() != except && c.outstanding().map(|o| o.line == line).unwrap_or(false)
            });
            debug_assert_eq!(
                interested, scanned,
                "inflight-interest index diverged from controller scan for {line:?}"
            );
        }
        interested
    }

    /// Installs a node's outstanding transaction, maintaining the
    /// line-keyed in-flight-interest index. The node must be idle.
    pub(crate) fn set_outstanding(&mut self, idx: usize, out: Outstanding) {
        debug_assert!(
            self.controllers[idx].outstanding.is_none(),
            "node already has an outstanding transaction"
        );
        self.line_entry(out.line).inflight += 1;
        self.controllers[idx].outstanding = Some(out);
    }

    /// Removes and returns a node's outstanding transaction, maintaining
    /// the line-keyed in-flight-interest index.
    pub(crate) fn clear_outstanding(&mut self, idx: usize) -> Option<Outstanding> {
        let out = self.controllers[idx].outstanding.take();
        if let Some(o) = &out {
            match self.lines.get_mut(&o.line) {
                Some(e) if e.inflight > 0 => e.inflight -= 1,
                _ => debug_assert!(false, "missing inflight-interest entry"),
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Cache mutation helpers (keep the registries consistent)
    // ------------------------------------------------------------------

    /// Installs or updates a line in a node's cache with full registry
    /// bookkeeping. Panics if an eviction of a *modified* victim would be
    /// required (the protocol reserves space before requesting).
    pub(crate) fn set_line(
        &mut self,
        node_idx: usize,
        line: LineAddr,
        mode: LineMode,
        data: LineVersion,
    ) {
        let node = self.controllers[node_idx].node();
        let prior = self.controllers[node_idx].mode_of(&line);
        // Registry out-transitions for the prior mode.
        match prior {
            Some(LineMode::Shared) => self.sharers_decr(line),
            Some(LineMode::Modified) => self.registry_clear_owner(line),
            _ => {}
        }
        let evicted = self.controllers[node_idx]
            .cache
            .insert(line, crate::node::CacheLine { mode, data });
        if let Some(ev) = evicted {
            assert!(
                ev.meta.mode != LineMode::Modified,
                "protocol bug: unreserved eviction of a modified line {:?} at {node}",
                ev.line
            );
            if ev.meta.mode == LineMode::Shared {
                self.sharers_decr(ev.line);
            }
            self.controllers[node_idx].note_recent(ev.line);
            if let Some(l1) = self.controllers[node_idx].proc_cache.as_mut() {
                l1.remove(&ev.line);
            }
        }
        self.controllers[node_idx].forget_recent(&line);
        match mode {
            LineMode::Shared => self.sharers_incr(line),
            LineMode::Modified => self.registry_set_owner(line, node),
            LineMode::Reserved => {}
        }
    }

    /// Removes a line from a node's cache (purge or eviction), updating
    /// registries and recording snarf recency.
    pub(crate) fn clear_line(&mut self, node_idx: usize, line: LineAddr) -> Option<LineMode> {
        let prior = self.controllers[node_idx].purge(&line)?;
        match prior.mode {
            LineMode::Shared => self.sharers_decr(line),
            LineMode::Modified => self.registry_clear_owner(line),
            LineMode::Reserved => {}
        }
        Some(prior.mode)
    }

    /// Downgrades a node's modified line to shared (it supplied the data).
    pub(crate) fn downgrade_to_shared(&mut self, node_idx: usize, line: LineAddr) {
        self.registry_clear_owner(line);
        if let Some(cl) = self.controllers[node_idx].cache.peek_mut(&line) {
            debug_assert_eq!(cl.mode, LineMode::Modified);
            cl.mode = LineMode::Shared;
        }
        self.sharers_incr(line);
    }

    /// Mints the version for a new write to `line` and commits it.
    pub(crate) fn next_version(&mut self, line: LineAddr) -> LineVersion {
        self.version_seq += 1;
        let v = LineVersion::new(self.version_seq);
        self.line_entry(line).committed = v;
        v
    }

    /// Verifies that carried data matches the latest committed write.
    pub(crate) fn verify_carried(&self, op: &BusOp) {
        if !self.config.checking() || op.allocate {
            return;
        }
        // Under requested-word-first / pieces modes, the originator's write
        // may already have committed before the full block finishes its
        // final bus operation; the carried (pre-write) data is then
        // legitimately older than the committed version.
        if let Some(info) = self.txn_info(op.txn) {
            if info.installed && info.kind != crate::driver::RequestKind::Read {
                return;
            }
        }
        if let Some(data) = op.data {
            // Delivered data may legitimately be *older* than the latest
            // committed write while a purge is still in flight behind the
            // reply — the paper's machine "does not guarantee complete
            // serializability" (§4). It must never be newer than any
            // committed write, and the quiescent checker verifies that all
            // stale copies are gone once the purges land.
            let expect = self.committed_version(op.line);
            assert!(
                data.stamp() <= expect.stamp(),
                "data from the future delivered for {:?} by {} (carried {:?}, committed {:?})",
                op.line,
                op.kind.name(),
                data,
                expect
            );
        }
    }

    // ------------------------------------------------------------------
    // Emission and bus plumbing
    // ------------------------------------------------------------------

    /// Emits `op` on bus `slot` after `delay_ns` (access latency of the
    /// supplier; zero for forwards).
    pub(crate) fn emit(&mut self, slot: usize, mut op: BusOp, delay_ns: u64) {
        // Split data transfers into pieces if configured.
        if op.streams_data() && op.piece.is_none() {
            if let LatencyMode::Pieces { words } = self.config.latency_mode() {
                let words = words.clamp(1, self.config.block_words());
                let count = self.config.block_words().div_ceil(words);
                if count > 1 {
                    op.piece = Some(Piece {
                        index: 0,
                        of: count,
                    });
                }
            }
        }
        // Fault injection: request ops can be lost in transit. The stamped
        // copy still occupies its bus; the loss is consumed at dispatch.
        if op.fault.is_none() && op.kind.is_request() && self.faults.lose_op(op.txn) {
            op.fault = Some(OpFault::Lost);
            self.metrics.lost_ops.incr();
        }
        self.note_op(&op);
        if delay_ns == 0 {
            self.enqueue_now(slot, op);
        } else {
            self.events
                .schedule_after(delay_ns, Event::Emit { slot, op });
        }
    }

    fn enqueue_now(&mut self, slot: usize, op: BusOp) {
        // Revalidate cache-promised data at the end of the access latency:
        // if the supplying cache lost the line to a purge meanwhile, the
        // controller simply discards the reply; the valid bit in memory
        // lets the originator's retransmission recover (§3).
        if let Some(supplier) = op.supplier {
            let still_good = self.controllers[supplier.as_usize()].data_of(&op.line) == op.data;
            if !still_good {
                self.reissue_row_request(&op);
                return;
            }
        }
        let now = self.now();
        let dur = self.op_duration(&op);
        let duplicate =
            op.fault.is_none() && op.kind.is_request() && self.faults.duplicate_op(op.txn);
        if let Some(done) = self.buses[slot].enqueue(op, dur, now) {
            self.events.schedule(done, Event::BusComplete { slot });
            self.op_started(slot, &op, now);
        }
        if duplicate {
            // A spurious copy rides the bus right behind the original.
            self.metrics.duplicated_ops.incr();
            let mut dup = op;
            dup.fault = Some(OpFault::Duplicate);
            if let Some(done) = self.buses[slot].enqueue_duplicate(dup, dur, now) {
                self.events.schedule(done, Event::BusComplete { slot });
                self.op_started(slot, &dup, now);
            }
        }
    }

    /// Bus occupancy of an operation in nanoseconds.
    pub(crate) fn op_duration(&self, op: &BusOp) -> u64 {
        let t = self.config.timing();
        if let Some(p) = op.piece {
            let piece_words = match self.config.latency_mode() {
                LatencyMode::Pieces { words } => words.clamp(1, self.config.block_words()),
                _ => self.config.block_words(),
            };
            let sent = piece_words * p.index;
            let remaining = self.config.block_words().saturating_sub(sent);
            t.addr_op_ns + t.word_ns * remaining.min(piece_words) as u64
        } else if op.streams_data() {
            t.data_op_ns(self.config.block_words())
        } else {
            // The arena engines fold each whole coherence transaction into
            // one atomic bus op on an un-pipelined snooping bus, which is
            // held from the address phase through the supplier's access to
            // the data transfer: address + access + block for reads /
            // ownership fetches / write-backs, address + one word for a
            // Dragon update, address only for a MESI upgrade. That bus
            // hold during the access is exactly the single-bus saturation
            // the Multicube's split row/column transactions avoid.
            // Everything else is address-only.
            match op.kind {
                OpKind::BusRead | OpKind::BusReadExclusive | OpKind::BusWriteback => {
                    t.memory_latency_ns + t.data_op_ns(self.config.block_words())
                }
                OpKind::BusUpdate => t.addr_op_ns + t.word_ns,
                _ => t.addr_op_ns,
            }
        }
    }

    /// Called whenever an operation starts occupying a bus: traces the
    /// start and handles the requested-word-first early unblock.
    fn op_started(&mut self, slot: usize, op: &BusOp, start: SimTime) {
        self.trace_op(TracePoint::OpStart, slot, op);
        if self.config.latency_mode() != LatencyMode::RequestedWordFirst {
            return;
        }
        if !op.streams_data() || !op.kind.completes_originator() {
            return;
        }
        if !self.originator_on_bus(slot, op) {
            return;
        }
        let Some(info) = self.txn_info(op.txn) else {
            return;
        };
        if info.done {
            return;
        }
        let t = self.config.timing();
        let early = start + (t.addr_op_ns + t.word_ns);
        let node = op.originator;
        let txn = op.txn;
        let data = op.data;
        self.events
            .schedule(early, Event::EarlyComplete { node, txn, data });
    }

    /// Pieces-mode first-piece unblock: the requested word has arrived.
    fn maybe_piece_unblock(&mut self, slot: usize, op: &BusOp) {
        if !op.kind.completes_originator() || !self.originator_on_bus(slot, op) {
            return;
        }
        if let Some(info) = self.txn_info(op.txn) {
            if !info.done {
                self.install_and_finish(op.originator, op.txn, op.data, true, false);
            }
        }
    }

    fn originator_on_bus(&self, slot: usize, op: &BusOp) -> bool {
        match op.kind.class() {
            OpClass::Row => self.origin_row(op) == self.slot_row(slot),
            OpClass::Column => self.origin_col(op) == self.slot_col(slot),
        }
    }

    /// Attributes an emitted operation to its transaction.
    fn note_op(&mut self, op: &BusOp) {
        if let Some(info) = self.txn_info_mut(op.txn) {
            info.bus_ops += 1;
            match op.kind.class() {
                OpClass::Row => info.row_ops += 1,
                OpClass::Column => info.col_ops += 1,
            }
        }
    }

    /// Records a row-request retransmission for the transaction.
    pub(crate) fn note_retry(&mut self, txn: TxnId) {
        if let Some(info) = self.txn_info_mut(txn) {
            info.retries += 1;
            let (line, node) = (info.line, info.node);
            self.trace_point(TracePoint::Retry, None, line, Some(node), Some(txn));
        }
        if let Some(out) = self
            .txn_info(txn)
            .map(|i| i.node)
            .and_then(|node| self.controllers[node.as_usize()].outstanding.as_mut())
        {
            if out.txn == txn {
                out.retries += 1;
            }
        }
        self.watchdog_check(txn);
    }

    /// Livelock watchdog, consulted after every recorded retry: a
    /// transaction over its retry or age budget either aborts the run
    /// (fail-fast) or is *escalated* — the injector stops faulting it, so
    /// its next retry is guaranteed to make the ordinary §3 progress.
    fn watchdog_check(&mut self, txn: TxnId) {
        let Some(info) = self.txn_info(txn) else {
            return;
        };
        if info.done || self.faults.is_escalated(txn) {
            return;
        }
        let age_ns = self.now().saturating_since(info.start).as_nanos();
        let wd = *self.faults.watchdog();
        if !wd.tripped(info.retries, age_ns) {
            return;
        }
        let (line, node, retries) = (info.line, info.node, info.retries);
        match wd.action() {
            WatchdogAction::FailFast => panic!(
                "watchdog: {txn} at {node} on {line:?} exceeded its budget \
                 ({retries} retries, {age_ns} ns old)"
            ),
            WatchdogAction::Escalate => {
                self.metrics.watchdog_trips.incr();
                self.trace_point(TracePoint::WatchdogTrip, None, line, Some(node), Some(txn));
                self.faults.escalate(txn);
            }
        }
    }

    /// A transaction still escalated by the watchdog, if any. Escalations
    /// are cleared as transactions finish, so at quiescence this must be
    /// `None` — the checker reports leaks.
    pub(crate) fn escalated_txn(&self) -> Option<TxnId> {
        self.faults.first_escalated()
    }

    /// Records which agent served the transaction's data.
    pub(crate) fn note_served(&mut self, txn: TxnId, served: Served) {
        if let Some(info) = self.txn_info_mut(txn) {
            info.served = served;
        }
    }

    /// Marks as *poisoned* every node on the given bus whose outstanding
    /// READ targets `line`: a purge is sweeping past, so any read reply in
    /// flight for that line carries stale data. Real controllers snoop
    /// operations against their own outstanding request — the paper's one
    /// sanctioned exception to memorylessness ("The only exception is for
    /// outstanding processor requests issued locally").
    pub(crate) fn poison_readers(
        &mut self,
        node_indices: &[usize],
        line: LineAddr,
        except: NodeId,
    ) {
        for &idx in node_indices {
            let node = self.controllers[idx].node();
            if node == except {
                continue;
            }
            let Some(out) = self.controllers[idx].outstanding() else {
                continue;
            };
            if out.line != line
                || out.kind != RequestKind::Read
                || out.phase != crate::node::TxnPhase::Requested
            {
                continue;
            }
            let txn = out.txn;
            if let Some(info) = self.txn_info_mut(txn) {
                if !info.done && !info.installed {
                    info.poisoned = true;
                    self.trace_point(TracePoint::Poison, None, line, Some(node), Some(txn));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Transaction bookkeeping
    // ------------------------------------------------------------------

    pub(crate) fn new_txn(&mut self, node: NodeId, req: Request) -> TxnId {
        self.txn_seq += 1;
        let txn = TxnId(self.txn_seq);
        debug_assert_eq!(
            self.txns.len() as u64 + 1,
            self.txn_seq,
            "txn slab out of step with the id sequence"
        );
        self.txns.push(TxnInfo {
            node,
            kind: req.kind,
            line: req.line,
            start: self.now(),
            bus_ops: 0,
            row_ops: 0,
            col_ops: 0,
            retries: 0,
            backoff_ns: 0,
            served: Served::Local,
            installed: false,
            poisoned: false,
            fill_l1: false,
            done: false,
        });
        txn
    }

    /// Bookkeeping for `txn`; `None` for ids this machine never minted.
    ///
    /// Ids are the dense 1-based issue sequence, so the slab index is
    /// `id - 1`; the `checked_sub` keeps a foreign `TxnId(0)` (tests build
    /// arbitrary ids) from underflowing.
    #[inline]
    pub(crate) fn txn_info(&self, txn: TxnId) -> Option<&TxnInfo> {
        self.txns.get(txn.0.checked_sub(1)? as usize)
    }

    /// Mutable access to `txn`'s bookkeeping.
    #[inline]
    pub(crate) fn txn_info_mut(&mut self, txn: TxnId) -> Option<&mut TxnInfo> {
        let idx = txn.0.checked_sub(1)?;
        self.txns.get_mut(idx as usize)
    }

    /// Whether `txn` is still the node's outstanding transaction in the
    /// requested phase.
    pub(crate) fn txn_outstanding(&self, node: NodeId, txn: TxnId) -> bool {
        self.controllers[node.as_usize()]
            .outstanding()
            .map(|o| o.txn == txn)
            .unwrap_or(false)
    }

    /// Installs the reply data into the originator's cache (idempotent) and
    /// finishes the transaction. `success` is the TAS outcome for
    /// test-and-set transactions.
    ///
    /// `is_final` distinguishes the reply's authoritative delivery (the
    /// completion of its last bus operation) from early unblocks
    /// (requested-word-first, first piece). A *poisoned* read — one whose
    /// line was purged by a concurrent write while the reply was in
    /// flight — discards the stale data; the final delivery retransmits
    /// the row request ("treated exactly as if it were a new request").
    pub(crate) fn install_and_finish(
        &mut self,
        node: NodeId,
        txn: TxnId,
        data: Option<LineVersion>,
        success: bool,
        is_final: bool,
    ) {
        if !self.txn_outstanding(node, txn) {
            return;
        }
        let info = self.txn_info(txn).expect("txn info").clone();
        if info.done {
            return;
        }
        if info.poisoned {
            if is_final {
                if let Some(i) = self.txn_info_mut(txn) {
                    i.poisoned = false;
                }
                self.note_retry(txn);
                self.issue_row_request(node, txn);
            }
            return;
        }
        let idx = node.as_usize();
        if !info.installed {
            match info.kind {
                RequestKind::Read => {
                    let v = data.unwrap_or(LineVersion::INITIAL);
                    self.set_line(idx, info.line, LineMode::Shared, v);
                }
                RequestKind::Write | RequestKind::Allocate => {
                    let v = self.next_version(info.line);
                    self.set_line(idx, info.line, LineMode::Modified, v);
                }
                RequestKind::TestAndSet => {
                    if success {
                        let v = self.next_version(info.line);
                        self.set_line(idx, info.line, LineMode::Modified, v);
                    }
                }
                RequestKind::Writeback => {}
            }
            if let Some(i) = self.txn_info_mut(txn) {
                i.installed = true;
            }
        }
        self.finish_txn(node, txn, success);
    }

    /// Marks the transaction complete: metrics, completion record,
    /// synthetic-workload follow-up.
    pub(crate) fn finish_txn(&mut self, node: NodeId, txn: TxnId, success: bool) {
        let now = self.now();
        let out = self.clear_outstanding(node.as_usize());
        debug_assert!(out.map(|o| o.txn == txn).unwrap_or(false));
        self.controllers[node.as_usize()].completed += 1;

        let (latency, kind, line, fill_l1) = {
            let info = self.txn_info_mut(txn).expect("txn info");
            info.done = true;
            // saturating_since, matching the watchdog's age computation: a
            // transaction finishing at its own start instant (zero-latency
            // local path) must report age 0, never wrap.
            (
                now.saturating_since(info.start),
                info.kind,
                info.line,
                info.fill_l1,
            )
        };
        if fill_l1 {
            self.controllers[node.as_usize()].l1_fill(line);
        }
        let info = self.txn_info(txn).expect("txn info").clone();
        self.metrics.bucket(kind, info.served, success).record(
            latency.as_nanos(),
            info.bus_ops,
            info.row_ops,
            info.col_ops,
            info.retries,
            info.backoff_ns,
        );
        self.faults.finish(txn);
        self.completions.push_back(Completion {
            node,
            txn,
            kind,
            line,
            success,
            latency,
            at: now,
        });
        self.on_synthetic_completion(node, latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(n: u32) -> Machine {
        Machine::new(MachineConfig::grid(n).unwrap(), 1).unwrap()
    }

    #[test]
    fn slots_map_rows_then_columns() {
        let m = machine(4);
        assert_eq!(m.row_slot(2), 2);
        assert_eq!(m.col_slot(2), 6);
        assert_eq!(m.slot_row(2), 2);
        assert_eq!(m.slot_col(6), 2);
        assert!(m.buses[m.row_slot(3)].id().is_row());
        assert!(m.buses[m.col_slot(0)].id().is_column());
    }

    #[test]
    fn submit_rejects_busy_node() {
        let mut m = machine(2);
        let node = NodeId::new(0);
        m.submit(node, Request::read(LineAddr::new(1))).unwrap();
        assert_eq!(
            m.submit(node, Request::read(LineAddr::new(2))),
            Err(SubmitError::Busy)
        );
    }

    #[test]
    fn registry_owner_list_tracks_inserts_and_removals() {
        let mut m = machine(2);
        for i in 0..4 {
            m.registry_set_owner(LineAddr::new(i), NodeId::new(0));
        }
        assert_eq!(m.owned_list.len(), 4);
        m.registry_clear_owner(LineAddr::new(1));
        m.registry_clear_owner(LineAddr::new(3));
        assert_eq!(m.owned_list.len(), 2);
        assert!(m.owned_list.contains(&LineAddr::new(0)));
        assert!(m.owned_list.contains(&LineAddr::new(2)));
        // Clearing a non-owner is a no-op.
        m.registry_clear_owner(LineAddr::new(9));
        assert_eq!(m.owned_list.len(), 2);
    }

    #[test]
    fn op_duration_distinguishes_data_and_addr() {
        let m = machine(2);
        let addr_op = BusOp::new(
            OpKind::ReadRowRequest,
            LineAddr::new(0),
            NodeId::new(0),
            TxnId(1),
        );
        assert_eq!(m.op_duration(&addr_op), 50);
        let data_op = BusOp::new(
            OpKind::ReadRowReply,
            LineAddr::new(0),
            NodeId::new(0),
            TxnId(1),
        )
        .with_data(LineVersion::INITIAL);
        assert_eq!(m.op_duration(&data_op), 50 + 16 * 50);
        // An ALLOCATE acknowledge is short.
        let ack = data_op.with_allocate(true);
        assert_eq!(m.op_duration(&ack), 50);
    }

    #[test]
    fn zero_age_completion_reports_zero_latency() {
        // A write-back of a line the node does not hold completes locally
        // at its own start instant; the checked age computation must yield
        // exactly zero (not wrap, not panic).
        let mut m = machine(2);
        let node = NodeId::new(0);
        m.submit(node, Request::writeback(LineAddr::new(9)))
            .unwrap();
        let done = m.advance().expect("writeback completes");
        assert_eq!(done.kind, RequestKind::Writeback);
        assert_eq!(done.latency.as_nanos(), 0);
        assert_eq!(done.at, SimTime::ZERO);
    }

    #[test]
    fn sync_word_requires_ownership() {
        let mut m = machine(2);
        let node = NodeId::new(0);
        let line = LineAddr::new(5);
        assert!(!m.write_sync_word(node, line, 1));
        // Acquire the line modified first.
        m.submit(node, Request::write(line)).unwrap();
        m.advance().unwrap();
        assert!(m.write_sync_word(node, line, 7));
        assert_eq!(m.sync_word(line), 7);
    }
}
