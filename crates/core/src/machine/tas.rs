//! The §4 remote test-and-set transaction.
//!
//! "The primitive is a remote test-and-set operation, which is executed
//! wherever the modified line resides, or in memory if unmodified. ... On
//! success, the line addressed by the test-and-set is moved to the cache of
//! the successful processor. On failure, only the notification of failure
//! is returned — the line remains in the remote cache."
//!
//! The column-bus test operation is modelled as atomic test-with-response:
//! the executing agent (owning cache or memory) signals the outcome on the
//! bus within the operation, the way the modified signal works, so all MLT
//! replicas can react identically. On success the transfer reuses the
//! READ-MOD reply machinery; on failure a short notification is routed back
//! to the originator.

use crate::machine::Machine;
use crate::metrics::Served;
use crate::node::LineMode;
use crate::proto::{BusOp, OpKind};

impl Machine {
    /// `TAS (ROW, REQUEST)`: routed exactly like a READ-MOD row request.
    pub(crate) fn on_tas_row_request(&mut self, slot: usize, op: BusOp) {
        let row = self.slot_row(slot);
        if let Some(cm) = self.poll_modified_signal(row, &op.line, op.txn) {
            let fwd = BusOp::new(OpKind::TasColRequest, op.line, op.originator, op.txn);
            let slot = self.col_slot(cm);
            self.emit(slot, fwd, 0);
        } else {
            let home = self.home_column(op.line);
            let fwd = BusOp::new(OpKind::TasColRequestMemory, op.line, op.originator, op.txn);
            let slot = self.col_slot(home);
            self.emit(slot, fwd, 0);
        }
    }

    /// `TAS (COLUMN, REQUEST)`: executed at the cache holding the line
    /// modified. Success removes the MLT entries and ships the line with
    /// the READ-MOD reply machinery; failure sends a short notification.
    pub(crate) fn on_tas_col_request(&mut self, slot: usize, op: BusOp) {
        let col = self.slot_col(slot);
        let holder = self
            .col_nodes(col)
            .find(|&i| self.controllers[i].mode_of(&op.line) == Some(LineMode::Modified));
        let Some(d_idx) = holder else {
            // Stale routing (the line moved or was written back): retry.
            self.reissue_row_request(&op);
            return;
        };
        // A blacked-out holder cannot execute the remote test-and-set;
        // bounce before any state (sync word, MLT) changes.
        if self.faults.in_blackout(d_idx, op.txn, self.now()) {
            self.reissue_row_request(&op);
            return;
        }
        let snoop = self.config.timing().snoop_latency_ns;
        self.note_served(op.txn, Served::RemoteModified);
        let word = self.sync_word(op.line);
        if word == 0 {
            // The table entry may still be in flight (the new owner's
            // `READMOD (COLUMN, INSERT)` has not landed yet). The remove
            // arbitrates exactly as in READ-MOD: a failed remove means the
            // request retries from the row bus — and crucially the word is
            // only set once the transfer is assured.
            if !self.mlt_remove_all(col, &op.line) {
                self.reissue_row_request(&op);
                return;
            }
            // Success: atomically set the word and transfer ownership
            // toward the originator.
            self.line_entry(op.line).sync_word = 1;
            let data = self.controllers[d_idx]
                .data_of(&op.line)
                .expect("modified line has data");
            self.clear_line(d_idx, op.line);
            let d_row = self.controllers[d_idx].row();
            let o_col = self.origin_col(&op);
            if col == o_col {
                let reply = BusOp::new(
                    OpKind::ReadModColReplyInsert,
                    op.line,
                    op.originator,
                    op.txn,
                )
                .with_data(data);
                let dst = self.col_slot(col);
                self.emit(dst, reply, snoop);
            } else {
                let reply = BusOp::new(OpKind::ReadModRowReply, op.line, op.originator, op.txn)
                    .with_data(data);
                let dst = self.row_slot(d_row);
                self.emit(dst, reply, snoop);
            }
        } else {
            // Failure: "only the notification of failure is returned".
            let d_row = self.controllers[d_idx].row();
            let fail = BusOp::new(OpKind::TasRowFail, op.line, op.originator, op.txn);
            let dst = self.row_slot(d_row);
            self.emit(dst, fail, snoop);
        }
    }

    /// `TAS (COLUMN, REQUEST, MEMORY)`: executed at memory when the line is
    /// globally unmodified; bounces off the invalid bit like a READ-MOD.
    pub(crate) fn on_tas_col_request_memory(&mut self, slot: usize, op: BusOp) {
        let col = self.slot_col(slot);
        debug_assert_eq!(col, self.home_column(op.line));
        let latency = self.config.timing().memory_latency_ns;
        // An injected transient NACK bounces off the same path as an
        // invalid memory copy.
        let answer = if self.nack_memory_access(slot, &op) {
            None
        } else {
            self.memories[col as usize].read_valid(&op.line)
        };
        match answer {
            Some(data) => {
                self.note_served(op.txn, Served::Memory);
                let word = self.sync_word(op.line);
                if word == 0 {
                    // Success: the line moves to the requester modified;
                    // shared copies are purged by the READ-MOD broadcast.
                    self.line_entry(op.line).sync_word = 1;
                    self.memories[col as usize].mark_invalid(&op.line);
                    let reply =
                        BusOp::new(OpKind::ReadModColReplyPurge, op.line, op.originator, op.txn)
                            .with_data(data);
                    self.emit(slot, reply, latency);
                } else {
                    let fail = BusOp::new(OpKind::TasColFail, op.line, op.originator, op.txn);
                    self.emit(slot, fail, latency);
                }
            }
            None => {
                self.metrics.memory_bounces.incr();
                let bounce = BusOp::new(OpKind::TasColRequest, op.line, op.originator, op.txn);
                self.emit(slot, bounce, latency);
            }
        }
    }

    /// `TAS (ROW, FAIL)`: failure notification crossing a row; the
    /// column-match controller relays it to the originator's column.
    pub(crate) fn on_tas_row_fail(&mut self, slot: usize, op: BusOp) {
        let row = self.slot_row(slot);
        if self.origin_row(&op) == row {
            self.install_and_finish(op.originator, op.txn, None, false, true);
        } else {
            let o_col = self.origin_col(&op);
            let fwd = BusOp::new(OpKind::TasColFail, op.line, op.originator, op.txn);
            let dst = self.col_slot(o_col);
            self.emit(dst, fwd, 0);
        }
    }

    /// `TAS (COLUMN, FAIL)`: failure notification crossing a column; the
    /// row-match controller relays it to the originator's row.
    pub(crate) fn on_tas_col_fail(&mut self, slot: usize, op: BusOp) {
        let col = self.slot_col(slot);
        if self.origin_col(&op) == col {
            self.install_and_finish(op.originator, op.txn, None, false, true);
        } else {
            let o_row = self.origin_row(&op);
            let fwd = BusOp::new(OpKind::TasRowFail, op.line, op.originator, op.txn);
            let dst = self.row_slot(o_row);
            self.emit(dst, fwd, 0);
        }
    }
}
