//! The closed-loop synthetic workload driver.
//!
//! Every processor alternates between an exponential *think* period and one
//! blocking memory request — the paper's "requests are assumed to be
//! non-overlapping" model. The generator is state-conditioned: the target
//! class (globally unmodified vs. modified-remote; with or without remote
//! sharers) is drawn from the configured probabilities and a concrete line
//! currently in that state is selected, so the Figure 2–4 caption
//! probabilities hold by construction.

use multicube_mem::LineAddr;
use multicube_sim::stats::OnlineStats;
use multicube_sim::SimDuration;
use multicube_topology::NodeId;

use crate::driver::{Request, RequestKind, SyntheticSpec};
use crate::machine::{Event, Machine};
use crate::metrics::{BusReport, BusUtilization, RunReport};

/// Book-keeping for one synthetic run.
#[derive(Debug)]
pub(crate) struct SyntheticState {
    spec: SyntheticSpec,
    /// Requests each node has yet to issue.
    remaining: Vec<u64>,
    /// Accumulated think time per node (ns).
    think_ns: Vec<f64>,
    /// Accumulated blocked time per node (ns).
    blocked_ns: Vec<f64>,
}

impl Machine {
    pub(crate) fn run_synthetic_inner(
        &mut self,
        spec: &SyntheticSpec,
        txns_per_node: u64,
    ) -> RunReport {
        self.begin_synthetic(spec, txns_per_node);
        while let Some(ev) = self.next_event() {
            self.handle(ev);
        }
        self.finish_synthetic()
    }

    /// Installs the synthetic workload on a fresh machine and schedules
    /// every node's first issue — the setup half of
    /// [`Machine::run_synthetic`], split out so external drivers (the
    /// parallel cube simulation) can interleave the event drain with
    /// their own traffic via [`Machine::advance_until`].
    pub(crate) fn begin_synthetic(&mut self, spec: &SyntheticSpec, txns_per_node: u64) {
        assert!(
            !self.events_pending() && self.txns.is_empty(),
            "run_synthetic requires a fresh machine"
        );
        let nn = (self.n * self.n) as usize;
        self.synthetic = Some(SyntheticState {
            spec: spec.clone(),
            remaining: vec![txns_per_node; nn],
            think_ns: vec![0.0; nn],
            blocked_ns: vec![0.0; nn],
        });
        for idx in 0..nn {
            self.schedule_next_issue(idx);
        }
    }

    /// The teardown half of [`Machine::run_synthetic`]: verifies
    /// coherence (when checking is enabled) and assembles the report.
    /// Call at quiescence after [`Machine::begin_synthetic`].
    pub(crate) fn finish_synthetic(&mut self) -> RunReport {
        if self.config.checking() {
            self.check_coherence()
                .expect("coherence violated at end of synthetic run");
        }
        self.build_report()
    }

    /// Schedules the node's next issue after an exponential think time,
    /// decrementing its quota.
    fn schedule_next_issue(&mut self, node_idx: usize) {
        let mean = match self.synthetic.as_mut() {
            Some(st) if st.remaining[node_idx] > 0 => {
                st.remaining[node_idx] -= 1;
                st.spec.mean_think_ns
            }
            _ => return,
        };
        let t = self.rng.exponential(mean).max(0.0);
        if let Some(st) = self.synthetic.as_mut() {
            st.think_ns[node_idx] += t;
        }
        let node = NodeId::new(node_idx as u32);
        self.events.schedule_after(
            t as u64,
            Event::Issue {
                node,
                request: None,
            },
        );
    }

    /// Hook called by [`Machine::finish_txn`].
    pub(crate) fn on_synthetic_completion(&mut self, node: NodeId, latency: SimDuration) {
        let idx = node.as_usize();
        if let Some(st) = self.synthetic.as_mut() {
            st.blocked_ns[idx] += latency.as_nanos() as f64;
        } else {
            return;
        }
        self.schedule_next_issue(idx);
    }

    /// Generates the node's next request from the workload spec.
    pub(crate) fn synthetic_next_request(&mut self, node: NodeId) -> Option<Request> {
        let spec = self.synthetic.as_ref()?.spec.clone();
        let is_write = self.rng.chance(spec.p_write);
        let want_modified = !self.rng.chance(spec.p_unmodified);
        let line = if want_modified {
            self.pick_modified_remote(node)
        } else {
            None
        };
        let line = line.unwrap_or_else(|| self.pick_unmodified(node, &spec, is_write));
        let kind = if is_write {
            if self.rng.chance(spec.p_allocate) {
                RequestKind::Allocate
            } else {
                RequestKind::Write
            }
        } else {
            RequestKind::Read
        };
        Some(Request::new(kind, line))
    }

    /// A line currently modified in some other node's cache, if one exists.
    fn pick_modified_remote(&mut self, node: NodeId) -> Option<LineAddr> {
        for _ in 0..8 {
            if self.owned_list.is_empty() {
                return None;
            }
            let i = self.rng.below(self.owned_list.len() as u64) as usize;
            let line = self.owned_list[i];
            if self.registry_owner(line) != Some(node) {
                return Some(line);
            }
        }
        None
    }

    /// A line in global state unmodified that misses in the node's cache.
    ///
    /// For writes the invalidation probability decides whether the target
    /// actually has shared copies: with probability `p_invalidation` the
    /// write goes to the read-shared pool (where copies abound), otherwise
    /// to a disjoint *fresh* address range that readers never touch —
    /// modelling writes to newly allocated data, the situation the paper's
    /// ALLOCATE hint targets ("cases where entire blocks are to be
    /// written"). This makes the Figure 3 knob control real sharer
    /// presence rather than a label.
    fn pick_unmodified(&mut self, node: NodeId, spec: &SyntheticSpec, is_write: bool) -> LineAddr {
        let invalidating = is_write && self.rng.chance(spec.p_invalidation);
        let fresh_base = spec.shared_lines;
        let mut fallback = None;
        for _ in 0..16 {
            let line = if is_write && !invalidating {
                // Fresh data: no reader has a copy.
                LineAddr::new(fresh_base + self.rng.below(spec.shared_lines))
            } else {
                LineAddr::new(self.rng.below(spec.shared_lines))
            };
            if self.registry_owner(line).is_some() {
                continue; // globally modified
            }
            if self.controllers[node.as_usize()].cache.contains(&line) {
                continue; // would be a local hit
            }
            if invalidating && self.sharer_count(line) == 0 {
                fallback = Some(line);
                continue; // keep looking for a line with real sharers
            }
            return line;
        }
        fallback.unwrap_or_else(|| LineAddr::new(self.rng.below(spec.shared_lines)))
    }

    /// Assembles the run report and tears down the synthetic state.
    fn build_report(&mut self) -> RunReport {
        let st = self.synthetic.take().expect("synthetic state");
        let now = self.now();
        let nn = st.think_ns.len();

        let mut eff_sum = 0.0;
        let mut eff_count = 0u32;
        for i in 0..nn {
            let denom = st.think_ns[i] + st.blocked_ns[i];
            if denom > 0.0 {
                eff_sum += st.think_ns[i] / denom;
                eff_count += 1;
            }
        }
        let efficiency = if eff_count > 0 {
            eff_sum / eff_count as f64
        } else {
            1.0
        };

        let n = self.n as usize;
        let mut util = BusUtilization::default();
        let mut row_ops = 0u64;
        let mut col_ops = 0u64;
        let mut buses = Vec::with_capacity(self.buses.len());
        for (i, bus) in self.buses.iter().enumerate() {
            let u = bus.utilization(now);
            if i < n {
                util.row_mean += u / n as f64;
                util.row_max = util.row_max.max(u);
                row_ops += bus.op_count();
            } else {
                util.col_mean += u / n as f64;
                util.col_max = util.col_max.max(u);
                col_ops += bus.op_count();
            }
            buses.push(BusReport {
                id: bus.id(),
                utilization: u,
                ops: bus.op_count(),
                data_ops: bus.data_op_count(),
                duplicates: bus.duplicate_count(),
                queue_high_water: bus.queue_high_water(),
            });
        }

        let elapsed_ms = now.as_millis_f64();
        let bus_txns = self.metrics.bus_transactions();
        let achieved = if elapsed_ms > 0.0 {
            self.metrics.total_transactions() as f64 / (nn as f64 * elapsed_ms)
        } else {
            0.0
        };

        let mut lat = OnlineStats::new();
        for s in [
            &self.metrics.read_unmodified,
            &self.metrics.read_modified,
            &self.metrics.write_unmodified,
            &self.metrics.write_modified,
        ] {
            lat.merge(&s.latency_ns);
        }
        let _ = bus_txns;

        RunReport {
            processors: (nn as u32),
            efficiency,
            achieved_rate_per_ms: achieved,
            transactions_completed: self.metrics.total_transactions(),
            mean_latency_ns: lat.mean(),
            elapsed: now,
            utilization: util,
            row_bus_ops: row_ops,
            col_bus_ops: col_ops,
            buses,
            events_scheduled: self.events.scheduled(),
            events_delivered: self.events.delivered(),
            event_queue_high_water: self.events.max_len(),
            metrics: self.metrics.clone(),
        }
    }
}
