//! Transaction initiation: the processor-side entry points of the formal
//! protocol ("Initiate a READ transaction with a row bus request; first
//! reserve space in the data cache (if necessary) with a WRITEBACK
//! transaction").

use multicube_topology::NodeId;

use crate::driver::{Request, RequestKind};
use crate::machine::{Event, Machine};
use crate::metrics::Served;
use crate::node::{LineMode, Outstanding, TxnPhase};
use crate::proto::{BusOp, OpKind, TxnId};

impl Machine {
    /// Issue-event handler: explicit request, or one generated from the
    /// synthetic workload spec.
    pub(crate) fn on_issue(&mut self, node: NodeId, request: Option<Request>) {
        let req = match request {
            Some(r) => Some(r),
            None => self.synthetic_next_request(node),
        };
        let Some(req) = req else { return };
        if self.controllers[node.as_usize()].outstanding().is_some() {
            // A scheduled issue raced with an unfinished transaction;
            // drop it (callers using submit_at must pace themselves).
            return;
        }
        self.start_request(node, req);
    }

    /// Starts a transaction for `node` on the configured protocol engine;
    /// the node must be idle.
    pub(crate) fn start_request(&mut self, node: NodeId, req: Request) -> TxnId {
        super::engine::engine_for(self.config.engine()).start_request(self, node, req)
    }

    /// Completion of a local (bus-free) cache access, routed to the
    /// configured protocol engine.
    pub(crate) fn on_local_done(&mut self, node: NodeId) {
        super::engine::engine_for(self.config.engine()).on_local_done(self, node);
    }

    /// Starts a Multicube (Appendix-A) transaction for `node`.
    pub(crate) fn start_request_multicube(&mut self, node: NodeId, req: Request) -> TxnId {
        let txn = self.new_txn(node, req);
        let idx = node.as_usize();
        let mode = self.controllers[idx].mode_of(&req.line);
        let snoop = self.config.timing().snoop_latency_ns;

        let mut out = Outstanding {
            txn,
            kind: req.kind,
            line: req.line,
            issued_at: self.now(),
            phase: TxnPhase::Local,
            retries: 0,
            bus_ops: 0,
            victim: None,
        };

        match (req.kind, mode) {
            // ---- Local (bus-free) paths ----
            (RequestKind::Read, Some(LineMode::Shared | LineMode::Modified))
            | (RequestKind::Write | RequestKind::Allocate, Some(LineMode::Modified))
            | (RequestKind::TestAndSet, Some(LineMode::Modified)) => {
                self.set_outstanding(idx, out);
                self.events.schedule_after(snoop, Event::LocalDone { node });
            }
            (RequestKind::Writeback, m) => {
                if m == Some(LineMode::Modified) {
                    out.phase = TxnPhase::Requested;
                    self.set_outstanding(idx, out);
                    let col = self.controllers[idx].col();
                    let op = BusOp::new(OpKind::WritebackColRemove, req.line, node, txn);
                    let slot = self.col_slot(col);
                    self.emit(slot, op, 0);
                } else {
                    // Nothing to write back: complete immediately.
                    self.set_outstanding(idx, out);
                    self.events.schedule_after(0u64, Event::LocalDone { node });
                }
            }
            // ---- Upgrade: write/TAS on a shared copy (no reservation
            //      needed; the line is already resident) ----
            (RequestKind::Write | RequestKind::Allocate, Some(LineMode::Shared)) => {
                out.phase = TxnPhase::Requested;
                self.set_outstanding(idx, out);
                self.issue_row_request(node, txn);
            }
            (RequestKind::TestAndSet, Some(LineMode::Shared)) => {
                out.phase = TxnPhase::Requested;
                self.set_outstanding(idx, out);
                self.issue_row_request(node, txn);
            }
            // ---- Miss paths (reserve space, then request) ----
            _ => {
                self.begin_miss(node, out);
            }
        }
        txn
    }

    /// Reserves a cache slot (writing back a modified victim first if
    /// necessary), then issues the row-bus request.
    fn begin_miss(&mut self, node: NodeId, mut out: Outstanding) {
        let idx = node.as_usize();
        let line = out.line;
        if !self.controllers[idx].cache.contains(&line) {
            if let Some((victim, meta)) = self.controllers[idx]
                .cache
                .victim_for(&line)
                .map(|(l, m)| (l, *m))
            {
                if meta.mode == LineMode::Modified {
                    // "if (victim line is modified) then
                    //      WRITEBACK (COLUMN, REMOVE); wait for continue"
                    self.metrics.victim_writebacks.incr();
                    out.phase = TxnPhase::VictimWriteback;
                    out.victim = Some(victim);
                    let txn = out.txn;
                    self.set_outstanding(idx, out);
                    let col = self.controllers[idx].col();
                    let op = BusOp::new(OpKind::WritebackColRemove, victim, node, txn);
                    let slot = self.col_slot(col);
                    self.emit(slot, op, 0);
                    return;
                }
                // Shared/reserved victims are dropped silently.
                self.clear_line(idx, victim);
            }
        }
        out.phase = TxnPhase::Requested;
        let txn = out.txn;
        self.set_outstanding(idx, out);
        self.issue_row_request(node, txn);
    }

    /// Emits the row-bus request appropriate for the outstanding kind.
    /// Also used for race-loss retransmissions ("the losing request is
    /// retransmitted on the row bus ... destined for the original
    /// requester").
    pub(crate) fn issue_row_request(&mut self, node: NodeId, txn: TxnId) {
        let Some(info) = self.txn_info(txn) else {
            return;
        };
        let (kind, line) = (info.kind, info.line);
        let row = self.controllers[node.as_usize()].row();
        let slot = self.row_slot(row);
        let (op_kind, allocate) = match kind {
            RequestKind::Read => (OpKind::ReadRowRequest, false),
            RequestKind::Write => (OpKind::ReadModRowRequest, false),
            RequestKind::Allocate => (OpKind::ReadModRowRequest, true),
            RequestKind::TestAndSet => (OpKind::TasRowRequest, false),
            RequestKind::Writeback => unreachable!("writebacks start on the column bus"),
        };
        let op = BusOp::new(op_kind, line, node, txn).with_allocate(allocate);
        self.emit(slot, op, 0);
    }

    /// Completion of a local (bus-free) cache access under the Multicube
    /// engine. Because up to 750 ns elapse between issue and this instant,
    /// the line may have been purged or downgraded by snooped traffic — in
    /// that case the access restarts as a bus transaction, exactly as a
    /// real controller would re-execute.
    pub(crate) fn on_local_done_multicube(&mut self, node: NodeId) {
        let idx = node.as_usize();
        let Some(out) = self.controllers[idx].outstanding else {
            return;
        };
        if out.phase != TxnPhase::Local {
            return;
        }
        let mode = self.controllers[idx].mode_of(&out.line);
        match (out.kind, mode) {
            (RequestKind::Read, Some(LineMode::Shared | LineMode::Modified)) => {
                // Touch for LRU.
                self.controllers[idx].cache.get(&out.line);
                self.note_served(out.txn, Served::Local);
                self.finish_txn(node, out.txn, true);
            }
            (RequestKind::Write | RequestKind::Allocate, Some(LineMode::Modified)) => {
                let v = self.next_version(out.line);
                if let Some(cl) = self.controllers[idx].cache.get_mut(&out.line) {
                    cl.data = v;
                }
                self.note_served(out.txn, Served::Local);
                self.finish_txn(node, out.txn, true);
            }
            (RequestKind::TestAndSet, Some(LineMode::Modified)) => {
                let word = self.sync_word(out.line);
                let success = word == 0;
                if success {
                    self.line_entry(out.line).sync_word = 1;
                    let v = self.next_version(out.line);
                    if let Some(cl) = self.controllers[idx].cache.get_mut(&out.line) {
                        cl.data = v;
                    }
                }
                self.note_served(out.txn, Served::Local);
                self.finish_txn(node, out.txn, success);
            }
            (RequestKind::Writeback, _) => {
                // The line was not modified (or was taken meanwhile).
                self.note_served(out.txn, Served::Local);
                self.finish_txn(node, out.txn, true);
            }
            _ => {
                // The line was snooped away while we waited: restart as a
                // bus transaction.
                self.note_retry(out.txn);
                let mut out2 = out;
                out2.phase = TxnPhase::Requested;
                self.clear_outstanding(idx);
                self.begin_miss(node, out2);
            }
        }
    }
}
