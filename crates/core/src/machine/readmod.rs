//! READ-MOD (and ALLOCATE) transaction procedures (Appendix A).
//!
//! ALLOCATE is "identical to the READ-MOD request, except that an
//! acknowledge, rather than data, is returned": the same procedures run
//! with the `allocate` flag set on every operation, which makes replies
//! address-length on the bus.

use crate::machine::Machine;
use crate::metrics::Served;
use crate::node::LineMode;
use crate::proto::{BusOp, OpKind};

impl Machine {
    /// `READMOD (ROW, REQUEST)`: route to the modified column or to memory
    /// on the home column (a write miss always consults the home column —
    /// copies anywhere must be purged).
    pub(crate) fn on_readmod_row_request(&mut self, slot: usize, op: BusOp) {
        let row = self.slot_row(slot);
        if let Some(cm) = self.poll_modified_signal(row, &op.line, op.txn) {
            let fwd = BusOp::new(
                OpKind::ReadModColRequestRemove,
                op.line,
                op.originator,
                op.txn,
            )
            .with_allocate(op.allocate);
            let slot = self.col_slot(cm);
            self.emit(slot, fwd, 0);
        } else {
            let home = self.home_column(op.line);
            let fwd = BusOp::new(
                OpKind::ReadModColRequestMemory,
                op.line,
                op.originator,
                op.txn,
            )
            .with_allocate(op.allocate);
            let slot = self.col_slot(home);
            self.emit(slot, fwd, 0);
        }
    }

    /// `READMOD (COLUMN, REQUEST, REMOVE)`: the holder invalidates its copy
    /// and ships ownership toward the originator.
    pub(crate) fn on_readmod_col_request_remove(&mut self, slot: usize, op: BusOp) {
        let col = self.slot_col(slot);
        // Same pre-removal gate as the READ flavour: a blacked-out holder
        // cannot answer, so bounce before the MLT entry comes out.
        if self.holder_blacked_out(col, &op) {
            self.reissue_row_request(&op);
            return;
        }
        if !self.mlt_remove_all(col, &op.line) {
            self.reissue_row_request(&op);
            return;
        }
        let holder = self
            .col_nodes(col)
            .find(|&i| self.controllers[i].mode_of(&op.line) == Some(LineMode::Modified));
        let Some(d_idx) = holder else {
            self.reissue_row_request(&op);
            return;
        };
        let data = self.controllers[d_idx]
            .data_of(&op.line)
            .expect("modified line has data");
        // "mark line invalid" — ownership leaves D entirely.
        self.clear_line(d_idx, op.line);
        self.note_served(op.txn, Served::RemoteModified);
        let d_row = self.controllers[d_idx].row();
        let snoop = self.config.timing().snoop_latency_ns;
        let o_col = self.origin_col(&op);
        if col == o_col {
            // "if (column match) then READMOD (COLUMN, REPLY, INSERT)".
            let reply = BusOp::new(
                OpKind::ReadModColReplyInsert,
                op.line,
                op.originator,
                op.txn,
            )
            .with_data(data)
            .with_allocate(op.allocate);
            let slot = self.col_slot(col);
            self.emit(slot, reply, snoop);
        } else {
            let reply = BusOp::new(OpKind::ReadModRowReply, op.line, op.originator, op.txn)
                .with_data(data)
                .with_allocate(op.allocate);
            let slot = self.row_slot(d_row);
            self.emit(slot, reply, snoop);
        }
    }

    /// `READMOD (COLUMN, REQUEST, MEMORY)`: memory supplies the line and
    /// starts the purge broadcast, or bounces an invalid request.
    pub(crate) fn on_readmod_col_request_memory(&mut self, slot: usize, op: BusOp) {
        let col = self.slot_col(slot);
        debug_assert_eq!(col, self.home_column(op.line));
        let latency = self.config.timing().memory_latency_ns;
        // An injected transient NACK bounces off the same path as an
        // invalid memory copy.
        let answer = if self.nack_memory_access(slot, &op) {
            None
        } else {
            self.memories[col as usize].read_valid(&op.line)
        };
        match answer {
            Some(data) => {
                // "* READMOD (COLUMN, REPLY, PURGE); * mark line invalid".
                self.memories[col as usize].mark_invalid(&op.line);
                self.note_served(op.txn, Served::Memory);
                let reply =
                    BusOp::new(OpKind::ReadModColReplyPurge, op.line, op.originator, op.txn)
                        .with_data(data)
                        .with_allocate(op.allocate);
                self.emit(slot, reply, latency);
            }
            None => {
                self.metrics.memory_bounces.incr();
                let bounce = BusOp::new(
                    OpKind::ReadModColRequestRemove,
                    op.line,
                    op.originator,
                    op.txn,
                )
                .with_allocate(op.allocate);
                self.emit(slot, bounce, latency);
            }
        }
    }

    /// `READMOD (ROW, REPLY)`: ownership transits the holder's row; the
    /// originator takes it directly if it lives here, otherwise the
    /// column-match controller relays it up the originator's column.
    pub(crate) fn on_readmod_row_reply(&mut self, slot: usize, op: BusOp) {
        let row = self.slot_row(slot);
        self.verify_carried(&op);
        let data = op.data.expect("reply carries data");
        let o_col = self.origin_col(&op);
        if self.origin_row(&op) == row {
            // id match: post the MLT insert up our column, then install.
            let ins = BusOp::new(OpKind::ReadModColInsert, op.line, op.originator, op.txn)
                .with_allocate(op.allocate);
            let slot = self.col_slot(o_col);
            self.emit(slot, ins, 0);
            self.install_and_finish(op.originator, op.txn, op.data, true, true);
        } else {
            let fwd = BusOp::new(
                OpKind::ReadModColReplyInsert,
                op.line,
                op.originator,
                op.txn,
            )
            .with_data(data)
            .with_allocate(op.allocate);
            let slot = self.col_slot(o_col);
            self.emit(slot, fwd, 0);
        }
    }

    /// `READMOD (COLUMN, REPLY, PURGE)`: the broadcast pivot. Every
    /// controller on the home column purges its copy and relays a purge
    /// along its own row; the controller on the originator's row carries
    /// the data with it. The originator (if it lives on the home column)
    /// installs directly.
    pub(crate) fn on_readmod_col_reply_purge(&mut self, slot: usize, op: BusOp) {
        let col = self.slot_col(slot);
        self.verify_carried(&op);
        let data = op.data.expect("reply carries data");
        let o_row = self.origin_row(&op);
        let o_col = self.origin_col(&op);
        // Idealized sharing filter (ablation): skip the pure-purge fan-out
        // when no cache holds a shared copy anywhere. The data-carrying
        // reply toward the originator is always sent.
        let fanout_needed = !self.config.broadcast_filter()
            || self.sharer_count(op.line) > 0
            || self.line_has_inflight_interest(op.line, op.originator);
        let members: Vec<usize> = self.col_nodes(col).collect();
        self.poison_readers(&members, op.line, op.originator);
        for idx in members.clone() {
            let node = self.controllers[idx].node();
            let r = self.controllers[idx].row();
            if node == op.originator {
                let ins = BusOp::new(OpKind::ReadModColInsert, op.line, op.originator, op.txn)
                    .with_allocate(op.allocate);
                let dst = self.col_slot(o_col);
                self.emit(dst, ins, 0);
                if fanout_needed {
                    let purge = BusOp::new(OpKind::ReadModRowPurge, op.line, op.originator, op.txn)
                        .with_allocate(op.allocate);
                    let dst = self.row_slot(o_row);
                    self.emit(dst, purge, 0);
                }
                self.install_and_finish(op.originator, op.txn, op.data, true, true);
            } else {
                if self.clear_line(idx, op.line) == Some(LineMode::Shared) {
                    self.metrics.invalidations.incr();
                }
                if r == o_row {
                    let fwd =
                        BusOp::new(OpKind::ReadModRowReplyPurge, op.line, op.originator, op.txn)
                            .with_data(data)
                            .with_allocate(op.allocate);
                    let dst = self.row_slot(r);
                    self.emit(dst, fwd, 0);
                } else if fanout_needed {
                    let purge = BusOp::new(OpKind::ReadModRowPurge, op.line, op.originator, op.txn)
                        .with_allocate(op.allocate);
                    let dst = self.row_slot(r);
                    self.emit(dst, purge, 0);
                }
            }
        }
    }

    /// `READMOD (ROW, REPLY, PURGE)`: deliver to the originator and purge
    /// shared copies on its row (the home-column cache is already purged).
    pub(crate) fn on_readmod_row_reply_purge(&mut self, slot: usize, op: BusOp) {
        let row = self.slot_row(slot);
        debug_assert_eq!(row, self.origin_row(&op));
        self.verify_carried(&op);
        let o_col = self.origin_col(&op);
        let members: Vec<usize> = self.row_nodes(row).collect();
        self.poison_readers(&members, op.line, op.originator);
        for idx in members.clone() {
            let node = self.controllers[idx].node();
            if node == op.originator {
                let ins = BusOp::new(OpKind::ReadModColInsert, op.line, op.originator, op.txn)
                    .with_allocate(op.allocate);
                let dst = self.col_slot(o_col);
                self.emit(dst, ins, 0);
                self.install_and_finish(op.originator, op.txn, op.data, true, true);
            } else if self.controllers[idx].mode_of(&op.line) == Some(LineMode::Shared) {
                // The formal protocol exempts home-column caches ("the home
                // column data cache has already been purged"), but with
                // snarfing a home-column node can re-acquire a stale copy
                // *between* the column purge and this row purge — so we
                // purge unconditionally; re-purging an invalid line is a
                // no-op.
                self.clear_line(idx, op.line);
                self.metrics.invalidations.incr();
            }
        }
    }

    /// `READMOD (ROW, PURGE)`: invalidate shared copies along one row.
    pub(crate) fn on_readmod_row_purge(&mut self, slot: usize, op: BusOp) {
        let row = self.slot_row(slot);
        let members: Vec<usize> = self.row_nodes(row).collect();
        self.poison_readers(&members, op.line, op.originator);
        for idx in members.clone() {
            if self.controllers[idx].node() == op.originator {
                continue;
            }
            // Home-column caches are purged again deliberately (see
            // `on_readmod_row_reply_purge`): a snarfed copy may have
            // appeared after the column purge.
            if self.controllers[idx].mode_of(&op.line) == Some(LineMode::Shared) {
                self.clear_line(idx, op.line);
                self.metrics.invalidations.incr();
            }
        }
    }

    /// `READMOD (COLUMN, REPLY, INSERT)`: final delivery up the
    /// originator's column; every controller there inserts an MLT entry.
    pub(crate) fn on_readmod_col_reply_insert(&mut self, slot: usize, op: BusOp) {
        let col = self.slot_col(slot);
        debug_assert_eq!(col, self.origin_col(&op));
        self.verify_carried(&op);
        self.install_and_finish(op.originator, op.txn, op.data, true, true);
        self.mlt_insert_all(col, &op);
    }

    /// `READMOD (COLUMN, INSERT)`: MLT insertion broadcast after the data
    /// was delivered on a row bus.
    pub(crate) fn on_readmod_col_insert(&mut self, slot: usize, op: BusOp) {
        let col = self.slot_col(slot);
        self.mlt_insert_all(col, &op);
    }
}
