//! READ transaction procedures (Appendix A) plus the shared helpers for
//! modified-signal polling, MLT replica maintenance and snarfing.

use multicube_mem::LineAddr;

use crate::machine::Machine;
use crate::metrics::Served;
use crate::node::LineMode;
use crate::proto::{BusOp, OpClass, OpKind};
use crate::trace::TracePoint;

impl Machine {
    // ------------------------------------------------------------------
    // Shared helpers
    // ------------------------------------------------------------------

    /// Polls the row for the wired-OR *modified signal*: at most one node's
    /// column MLT contains the line; returns that column. This is the one
    /// place the machine *observes* MLT replicas, so it is also where the
    /// injected imperfections surface: blacked-out controllers stay silent,
    /// replicas with a pending delayed update answer from their stale view,
    /// and the §3 drop ("a controller can, on occasion, simply discard such
    /// requests without breaking the protocol") loses the whole signal.
    pub(crate) fn poll_modified_signal(
        &mut self,
        row: u32,
        line: &LineAddr,
        txn: crate::proto::TxnId,
    ) -> Option<u32> {
        let now = self.now();
        let mut found: Option<u32> = None;
        let perturbed = self.faults.plan().is_active();
        for idx in self.row_nodes(row).collect::<Vec<_>>() {
            if self.faults.in_blackout(idx, txn, now) {
                continue;
            }
            let present = match self.faults.stale_presence(txn, idx, line, now) {
                Some(stale) => stale,
                None => self.controllers[idx].mlt_contains(line),
            };
            if present {
                debug_assert!(
                    found.is_none() || perturbed,
                    "two columns claim {line:?} modified — MLT replicas diverged"
                );
                if found.is_none() {
                    found = Some(self.controllers[idx].col());
                }
                if !cfg!(debug_assertions) && !perturbed {
                    break;
                }
            }
        }
        if found.is_some() && self.faults.drop_signal(txn) {
            self.metrics.dropped_signals.incr();
            let slot = self.row_slot(row);
            self.trace_point(TracePoint::SignalDrop, Some(slot), *line, None, None);
            return None;
        }
        found
    }

    /// Whether the line's current holder sits in column `col` and is inside
    /// an injected blackout window: a silent holder cannot answer a REMOVE,
    /// so the request must bounce *before* the MLT entry is removed.
    pub(crate) fn holder_blacked_out(&mut self, col: u32, op: &BusOp) -> bool {
        let Some(owner) = self.registry_owner(op.line) else {
            return false;
        };
        let idx = owner.as_usize();
        self.controllers[idx].col() == col && self.faults.in_blackout(idx, op.txn, self.now())
    }

    /// Rolls the memory-bank transient NACK for one access; counted and
    /// traced here so all three `*_col_request_memory` handlers share it.
    pub(crate) fn nack_memory_access(&mut self, slot: usize, op: &BusOp) -> bool {
        if !self.faults.nack_memory(op.txn) {
            return false;
        }
        self.metrics.memory_nacks.incr();
        self.trace_point(
            TracePoint::FaultNack,
            Some(slot),
            op.line,
            Some(op.originator),
            Some(op.txn),
        );
        true
    }

    /// Removes the line from every MLT replica of a column; returns whether
    /// the entry was present ("remove failed" drives race retries).
    pub(crate) fn mlt_remove_all(&mut self, col: u32, line: &LineAddr) -> bool {
        let mut removed = None;
        for idx in self.col_nodes(col).collect::<Vec<_>>() {
            let r = self.controllers[idx].mlt.remove(line);
            match removed {
                None => removed = Some(r),
                Some(prev) => debug_assert_eq!(prev, r, "MLT replicas diverged"),
            }
        }
        let removed = removed.unwrap_or(false);
        if removed {
            let slot = self.col_slot(col);
            self.trace_point(TracePoint::MltRemove, Some(slot), *line, None, None);
            self.maybe_delay_replica(col, *line, true);
        }
        removed
    }

    /// Rolls the MLT-delay fault after a successful replica update: one
    /// randomly chosen replica in the column keeps serving its *pre-update*
    /// view of the line (`stale_present`) to modified-signal polls until
    /// the delay window closes. The authoritative replicas stay lockstep —
    /// only the observation is stale.
    fn maybe_delay_replica(&mut self, col: u32, line: LineAddr, stale_present: bool) {
        if !self.faults.roll_mlt_delay() {
            return;
        }
        let row = self.faults.pick(self.n as u64) as u32;
        let idx = (row * self.n + col) as usize;
        let (_, window_ns) = self.faults.plan().mlt_delay();
        let until = self.now() + window_ns;
        self.faults
            .record_stale_view(idx, line, stale_present, until);
        self.metrics.mlt_delays.incr();
        let slot = self.col_slot(col);
        let node = self.controllers[idx].node();
        self.trace_point(TracePoint::MltDelay, Some(slot), line, Some(node), None);
    }

    /// Inserts the line into every MLT replica of a column, handling
    /// overflow: the overflow victim's holder writes it back and marks it
    /// shared (the Appendix-A `table overflow` path).
    pub(crate) fn mlt_insert_all(&mut self, col: u32, op: &BusOp) {
        use multicube_mem::MltInsert;
        let mut overflow: Option<LineAddr> = None;
        for idx in self.col_nodes(col).collect::<Vec<_>>() {
            if let MltInsert::Overflow(v) = self.controllers[idx].mlt.insert(op.line) {
                overflow = Some(v);
            }
        }
        let slot = self.col_slot(col);
        self.trace_point(
            TracePoint::MltInsert,
            Some(slot),
            op.line,
            Some(op.originator),
            Some(op.txn),
        );
        self.maybe_delay_replica(col, op.line, false);
        let Some(victim) = overflow else { return };
        self.metrics.mlt_overflows.incr();
        let holder = self
            .col_nodes(col)
            .find(|&i| self.controllers[i].mode_of(&victim) == Some(LineMode::Modified));
        let Some(h_idx) = holder else {
            assert!(
                !self.config.checking(),
                "MLT overflow victim {victim:?} has no holder in column {col}"
            );
            return;
        };
        let data = self.controllers[h_idx]
            .data_of(&victim)
            .expect("holder has data");
        self.downgrade_to_shared(h_idx, victim);
        let h_row = self.controllers[h_idx].row();
        let h_col = self.controllers[h_idx].col();
        let h_node = self.controllers[h_idx].node();
        let snoop = self.config.timing().snoop_latency_ns;
        if h_col == self.home_column(victim) {
            let wb = BusOp::new(OpKind::WritebackColUpdateMemory, victim, h_node, op.txn)
                .with_data(data);
            let slot = self.col_slot(h_col);
            self.emit(slot, wb, snoop);
        } else {
            let wb = BusOp::new(OpKind::WritebackRowUpdate, victim, h_node, op.txn).with_data(data);
            let slot = self.row_slot(h_row);
            self.emit(slot, wb, snoop);
        }
    }

    /// Retransmits the originator's row-bus request after a lost race or a
    /// memory bounce ("the losing request is retransmitted on the row bus,
    /// where it is treated exactly as if it were a new request (but
    /// destined for the original requester)").
    pub(crate) fn reissue_row_request(&mut self, op: &BusOp) {
        // A lost-op reissue can race the transaction's own completion (a
        // duplicate or late path may have finished it): never retry a
        // transaction that is done or unknown.
        if self.txn_info(op.txn).map(|i| i.done).unwrap_or(true) {
            return;
        }
        self.note_retry(op.txn);
        let Some((kind, retries)) = self.txn_info(op.txn).map(|i| (i.kind, i.retries)) else {
            return;
        };
        use crate::driver::RequestKind::*;
        let op_kind = match kind {
            Read => OpKind::ReadRowRequest,
            Write | Allocate => OpKind::ReadModRowRequest,
            TestAndSet => OpKind::TasRowRequest,
            Writeback => return,
        };
        // Bounded exponential backoff: spaced retries keep a contended or
        // faulted line from saturating the row bus with bounces.
        let delay = self.faults.retry_delay_ns(retries);
        if delay > 0 {
            if let Some(info) = self.txn_info_mut(op.txn) {
                info.backoff_ns += delay;
            }
        }
        let row = self.origin_row(op);
        let retry = BusOp::new(op_kind, op.line, op.originator, op.txn).with_allocate(op.allocate);
        let slot = self.row_slot(row);
        self.emit(slot, retry, delay);
    }

    /// Offers a passing data operation to the snoopers on a bus for
    /// snarfing. Only called for operations whose line is in global state
    /// unmodified, per §3.
    ///
    /// Snarfing is restricted to **row-bus** deliveries: on the delivery
    /// row, bus FIFO order guarantees that any invalidation generated by a
    /// concurrent write is delivered *after* the data (the same ordering
    /// that protects the requester's own install), so a snarfed copy that
    /// is momentarily stale is purged right behind it. Column-bus data is
    /// not ordered against row-bus purges, so snarfing there could leave a
    /// permanently stale shared copy.
    pub(crate) fn snarf_on_bus(&mut self, slot: usize, op: &BusOp) {
        if !self.config.snarfing() || !op.streams_data() {
            return;
        }
        if op.kind.class() != OpClass::Row {
            return;
        }
        // A poisoned reply carries data that a purge has already swept
        // past; the requester will discard it, and so must snoopers.
        if let Some(info) = self.txn_info(op.txn) {
            if info.poisoned {
                return;
            }
        }
        let Some(data) = op.data else { return };
        // Multi-beat transfers (pieces mode) can have an invalidation
        // cross the bus *between* beats; a real snarfing controller
        // assembling the line sees the purge pass and aborts. Model that
        // abort by declining to snarf data that is no longer current.
        if data != self.committed_version(op.line) {
            return;
        }
        let now = self.now();
        let nodes: Vec<usize> = self.row_nodes(self.slot_row(slot)).collect();
        for idx in nodes {
            let node = self.controllers[idx].node();
            if node == op.originator {
                continue;
            }
            // A blacked-out controller is not watching the bus: no snarf.
            if self.faults.in_blackout(idx, op.txn, now) {
                continue;
            }
            if self.controllers[idx].recently_held(&op.line)
                && self.controllers[idx].can_snarf(&op.line)
            {
                self.set_line(idx, op.line, LineMode::Shared, data);
                self.controllers[idx].snarfs += 1;
                self.metrics.snarfs.incr();
            }
        }
    }

    // ------------------------------------------------------------------
    // READ procedures
    // ------------------------------------------------------------------

    /// `READ (ROW, REQUEST)`: route to the modified column if some node's
    /// MLT knows the line is modified there, else to the home column —
    /// which may answer from its own cache.
    pub(crate) fn on_read_row_request(&mut self, slot: usize, op: BusOp) {
        let row = self.slot_row(slot);
        if let Some(cm) = self.poll_modified_signal(row, &op.line, op.txn) {
            let fwd = BusOp::new(OpKind::ReadColRequestRemove, op.line, op.originator, op.txn);
            let slot = self.col_slot(cm);
            self.emit(slot, fwd, 0);
            return;
        }
        let home = self.home_column(op.line);
        let home_idx = self.node_at(row, home).as_usize();
        if self.controllers[home_idx].mode_of(&op.line) == Some(LineMode::Shared)
            && !self.faults.in_blackout(home_idx, op.txn, self.now())
        {
            // "if (line is shared) then READ (ROW, REPLY)"
            let data = self.controllers[home_idx]
                .data_of(&op.line)
                .expect("shared line has data");
            self.note_served(op.txn, Served::HomeCache);
            let home_node = self.controllers[home_idx].node();
            let reply = BusOp::new(OpKind::ReadRowReply, op.line, op.originator, op.txn)
                .with_data(data)
                .with_supplier(home_node);
            let snoop = self.config.timing().snoop_latency_ns;
            let slot = self.row_slot(row);
            self.emit(slot, reply, snoop);
        } else {
            let fwd = BusOp::new(OpKind::ReadColRequestMemory, op.line, op.originator, op.txn);
            let slot = self.col_slot(home);
            self.emit(slot, fwd, 0);
        }
    }

    /// `READ (COLUMN, REQUEST, REMOVE)`: the MLT removal arbitrates; the
    /// holder supplies the data and downgrades to shared.
    pub(crate) fn on_read_col_request_remove(&mut self, slot: usize, op: BusOp) {
        let col = self.slot_col(slot);
        // A blacked-out holder cannot volunteer its data. The gate sits
        // *before* the table removal: removing the MLT entry while the
        // holder stays silent would desynchronise table and caches.
        if self.holder_blacked_out(col, &op) {
            self.reissue_row_request(&op);
            return;
        }
        if !self.mlt_remove_all(col, &op.line) {
            // "if (remove failed) then if (row match) then READ (ROW, REQUEST)"
            self.reissue_row_request(&op);
            return;
        }
        let holder = self
            .col_nodes(col)
            .find(|&i| self.controllers[i].mode_of(&op.line) == Some(LineMode::Modified));
        let Some(d_idx) = holder else {
            // Defensive: table and caches diverged; retry as a lost race.
            self.reissue_row_request(&op);
            return;
        };
        let data = self.controllers[d_idx]
            .data_of(&op.line)
            .expect("modified line has data");
        self.downgrade_to_shared(d_idx, op.line);
        self.note_served(op.txn, Served::RemoteModified);
        let d_row = self.controllers[d_idx].row();
        let snoop = self.config.timing().snoop_latency_ns;
        let o_row = self.origin_row(&op);
        if col == self.home_column(op.line) {
            let reply = BusOp::new(
                OpKind::ReadColReplyUpdateMemory,
                op.line,
                op.originator,
                op.txn,
            )
            .with_data(data);
            let slot = self.col_slot(col);
            self.emit(slot, reply, snoop);
        } else if d_row == o_row {
            let reply = BusOp::new(OpKind::ReadRowReplyUpdate, op.line, op.originator, op.txn)
                .with_data(data);
            let slot = self.row_slot(d_row);
            self.emit(slot, reply, snoop);
        } else {
            let reply = BusOp::new(OpKind::ReadColReplyUpdate, op.line, op.originator, op.txn)
                .with_data(data);
            let slot = self.col_slot(col);
            self.emit(slot, reply, snoop);
        }
    }

    /// `READ (COLUMN, REQUEST, MEMORY)`: memory answers if its copy is
    /// valid, else bounces the request back as a REMOVE (the robustness
    /// path driven by the per-line valid bit).
    pub(crate) fn on_read_col_request_memory(&mut self, slot: usize, op: BusOp) {
        let col = self.slot_col(slot);
        debug_assert_eq!(col, self.home_column(op.line));
        let latency = self.config.timing().memory_latency_ns;
        // An injected transient NACK: the bank refuses this access. Reuse
        // the valid-bit bounce — the request re-enters the column as a
        // REMOVE exactly as if memory's copy were stale.
        let answer = if self.nack_memory_access(slot, &op) {
            None
        } else {
            self.memories[col as usize].read_valid(&op.line)
        };
        match answer {
            Some(data) => {
                self.note_served(op.txn, Served::Memory);
                let reply = BusOp::new(OpKind::ReadColReplyNoPurge, op.line, op.originator, op.txn)
                    .with_data(data);
                self.emit(slot, reply, latency);
            }
            None => {
                self.metrics.memory_bounces.incr();
                let bounce =
                    BusOp::new(OpKind::ReadColRequestRemove, op.line, op.originator, op.txn);
                self.emit(slot, bounce, latency);
            }
        }
    }

    /// `READ (COLUMN, REPLY, UPDATE)`: data leaves the modified column; the
    /// originator (if here) takes it and forwards a memory update along its
    /// row; otherwise the row-match controller forwards the data.
    pub(crate) fn on_read_col_reply_update(&mut self, slot: usize, op: BusOp) {
        let col = self.slot_col(slot);
        self.verify_carried(&op);
        let data = op.data.expect("reply carries data");
        if self.origin_col(&op) == col {
            // "READ (ROW, UPDATE)" == WRITEBACK (ROW, UPDATE). Emitted
            // before completing so the operation is attributed to this
            // transaction's cost.
            let upd = BusOp::new(OpKind::WritebackRowUpdate, op.line, op.originator, op.txn)
                .with_data(data);
            let o_row = self.origin_row(&op);
            let slot = self.row_slot(o_row);
            self.emit(slot, upd, 0);
            self.install_and_finish(op.originator, op.txn, op.data, true, true);
        } else {
            let fwd = BusOp::new(OpKind::ReadRowReplyUpdate, op.line, op.originator, op.txn)
                .with_data(data);
            let o_row = self.origin_row(&op);
            let slot = self.row_slot(o_row);
            self.emit(slot, fwd, 0);
        }
        self.snarf_on_bus(slot, &op);
    }

    /// `READ (COLUMN, REPLY, UPDATE, MEMORY)`: data on the home column;
    /// memory updates as a side effect of the same bus operation.
    pub(crate) fn on_read_col_reply_update_memory(&mut self, slot: usize, op: BusOp) {
        let col = self.slot_col(slot);
        self.verify_carried(&op);
        let data = op.data.expect("reply carries data");
        // "* write memory line and mark line valid"
        self.memories[col as usize].write(op.line, data);
        if self.origin_col(&op) == col {
            self.install_and_finish(op.originator, op.txn, op.data, true, true);
        } else {
            let fwd =
                BusOp::new(OpKind::ReadRowReply, op.line, op.originator, op.txn).with_data(data);
            let o_row = self.origin_row(&op);
            let slot = self.row_slot(o_row);
            self.emit(slot, fwd, 0);
        }
        self.snarf_on_bus(slot, &op);
    }

    /// `READ (COLUMN, REPLY, NOPURGE)`: memory's reply travels up the home
    /// column; the row-match controller relays it to the originator's row.
    pub(crate) fn on_read_col_reply_nopurge(&mut self, slot: usize, op: BusOp) {
        let col = self.slot_col(slot);
        self.verify_carried(&op);
        let data = op.data.expect("reply carries data");
        if self.origin_col(&op) == col {
            self.install_and_finish(op.originator, op.txn, op.data, true, true);
        } else {
            let fwd =
                BusOp::new(OpKind::ReadRowReply, op.line, op.originator, op.txn).with_data(data);
            let o_row = self.origin_row(&op);
            let slot = self.row_slot(o_row);
            self.emit(slot, fwd, 0);
        }
        self.snarf_on_bus(slot, &op);
    }

    /// `READ (ROW, REPLY)`: final delivery on the originator's row.
    pub(crate) fn on_read_row_reply(&mut self, slot: usize, op: BusOp) {
        debug_assert_eq!(self.slot_row(slot), self.origin_row(&op));
        self.verify_carried(&op);
        self.install_and_finish(op.originator, op.txn, op.data, true, true);
        self.snarf_on_bus(slot, &op);
    }

    /// `READ (ROW, REPLY, UPDATE)`: final delivery on the originator's row;
    /// the home-column controller additionally forwards the memory update.
    pub(crate) fn on_read_row_reply_update(&mut self, slot: usize, op: BusOp) {
        debug_assert_eq!(self.slot_row(slot), self.origin_row(&op));
        self.verify_carried(&op);
        let data = op.data.expect("reply carries data");
        // "if (on home column) then READ (COLUMN, UPDATE, MEMORY)" —
        // emitted before completing for correct cost attribution.
        let home = self.home_column(op.line);
        let home_node = self.node_at(self.slot_row(slot), home);
        let upd = BusOp::new(OpKind::WritebackColUpdateMemory, op.line, home_node, op.txn)
            .with_data(data);
        let dst = self.col_slot(home);
        self.emit(dst, upd, 0);
        self.install_and_finish(op.originator, op.txn, op.data, true, true);
        self.snarf_on_bus(slot, &op);
    }
}
