//! WRITE-BACK transaction procedures (Appendix A).

use crate::driver::RequestKind;
use crate::machine::Machine;
use crate::metrics::Served;
use crate::node::{LineMode, TxnPhase};
use crate::proto::{BusOp, OpKind};

impl Machine {
    /// `WRITEBACK (COLUMN, REMOVE)`: delete the MLT entry first so that an
    /// outstanding request cannot chase a line that has already gone to
    /// memory; then (on success) the initiator writes the line back and the
    /// blocked processor request continues.
    pub(crate) fn on_writeback_col_remove(&mut self, slot: usize, op: BusOp) {
        let col = self.slot_col(slot);
        let removed = self.mlt_remove_all(col, &op.line);
        let idx = op.originator.as_usize();
        debug_assert_eq!(self.controllers[idx].col(), col);

        if removed {
            // "if (remove succeeded)": the line is still ours; write it back.
            if self.controllers[idx].mode_of(&op.line) == Some(LineMode::Modified) {
                let data = self.controllers[idx]
                    .data_of(&op.line)
                    .expect("modified line has data");
                self.downgrade_to_shared(idx, op.line);
                let snoop = self.config.timing().snoop_latency_ns;
                if col == self.home_column(op.line) {
                    let upd = BusOp::new(
                        OpKind::WritebackColUpdateMemory,
                        op.line,
                        op.originator,
                        op.txn,
                    )
                    .with_data(data);
                    let dst = self.col_slot(col);
                    self.emit(dst, upd, snoop);
                } else {
                    let row = self.controllers[idx].row();
                    let upd =
                        BusOp::new(OpKind::WritebackRowUpdate, op.line, op.originator, op.txn)
                            .with_data(data);
                    let dst = self.row_slot(row);
                    self.emit(dst, upd, snoop);
                }
            }
        }
        // "in either case signal the processor request to continue".
        self.writeback_continue(op);
    }

    /// The `continue request` signal: resume the victim-blocked transaction
    /// or complete a standalone WRITE-BACK.
    fn writeback_continue(&mut self, op: BusOp) {
        let node = op.originator;
        let idx = node.as_usize();
        let Some(out) = self.controllers[idx].outstanding else {
            return;
        };
        match out.phase {
            TxnPhase::VictimWriteback if out.txn == op.txn => {
                // "wait for continue; mark line invalid" — evict the victim
                // (now shared, or already taken by a racing request).
                if let Some(victim) = out.victim {
                    self.clear_line(idx, victim);
                }
                if let Some(o) = self.controllers[idx].outstanding.as_mut() {
                    o.phase = TxnPhase::Requested;
                    o.victim = None;
                }
                self.issue_row_request(node, op.txn);
            }
            TxnPhase::Requested if out.txn == op.txn && out.kind == RequestKind::Writeback => {
                // Standalone write-back: "mark line shared" already done by
                // the remove handler; the transaction is complete.
                self.note_served(op.txn, Served::Memory);
                self.finish_txn(node, op.txn, true);
            }
            _ => {}
        }
    }

    /// `WRITEBACK (ROW, UPDATE)`: the home-column controller forwards the
    /// line to memory.
    pub(crate) fn on_writeback_row_update(&mut self, slot: usize, op: BusOp) {
        self.verify_carried(&op);
        let data = op.data.expect("write-back carries data");
        let home = self.home_column(op.line);
        let upd = BusOp::new(
            OpKind::WritebackColUpdateMemory,
            op.line,
            op.originator,
            op.txn,
        )
        .with_data(data);
        let dst = self.col_slot(home);
        self.emit(dst, upd, 0);
        self.snarf_on_bus(slot, &op);
    }

    /// `WRITEBACK (COLUMN, UPDATE, MEMORY)`: "* write memory line and mark
    /// line valid".
    pub(crate) fn on_writeback_col_update_memory(&mut self, slot: usize, op: BusOp) {
        let col = self.slot_col(slot);
        debug_assert_eq!(col, self.home_column(op.line));
        self.verify_carried(&op);
        let data = op.data.expect("write-back carries data");
        self.memories[col as usize].write(op.line, data);
        self.snarf_on_bus(slot, &op);
    }
}
