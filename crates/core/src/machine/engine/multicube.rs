//! The default engine: the paper's Appendix-A write-invalidate protocol
//! over the row/column bus grid. All behavior lives in the sibling
//! `machine` submodules (`start`, `readops`, `readmod`, `tas`,
//! `writeback`); this engine only routes to it, so the refactor keeps the
//! default machine byte-identical trace-for-trace.

use multicube_topology::NodeId;

use crate::check::{self, CoherenceView, CoherenceViolation};
use crate::config::EngineKind;
use crate::driver::Request;
use crate::machine::Machine;
use crate::proto::{BusOp, TxnId};

use super::ProtocolEngine;

/// The Appendix-A Multicube protocol (grid of row and column buses).
pub struct MulticubeEngine;

impl ProtocolEngine for MulticubeEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Multicube
    }

    fn start_request(&self, m: &mut Machine, node: NodeId, req: Request) -> TxnId {
        m.start_request_multicube(node, req)
    }

    fn on_op(&self, m: &mut Machine, slot: usize, op: BusOp) {
        m.dispatch_multicube(slot, op);
    }

    fn on_local_done(&self, m: &mut Machine, node: NodeId) {
        m.on_local_done_multicube(node);
    }

    fn check(&self, v: &dyn CoherenceView) -> Result<(), CoherenceViolation> {
        check::check(v)
    }
}
