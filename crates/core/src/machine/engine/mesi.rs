//! Write-invalidate MESI on a single shared snooping bus.
//!
//! State mapping onto the Multicube cache fabric:
//!
//! * `M` — [`LineMode::Modified`] (registry owner, memory invalid)
//! * `E` — [`LineMode::Reserved`] plus an `arena_excl` entry (memory valid)
//! * `S` — [`LineMode::Shared`]
//! * `I` — not resident
//!
//! Every transaction is one atomic bus operation: `BusRead` (miss for a
//! readable copy), `BusReadExclusive` (miss for ownership, invalidating
//! all other copies), `BusUpgrade` (ownership for an already-shared copy)
//! and `BusWriteback` (dirty flush). A write to an `E` copy upgrades to
//! `M` silently — MESI's advantage over MSI.

use multicube_topology::NodeId;

use crate::check::{self, CoherenceView, CoherenceViolation};
use crate::config::EngineKind;
use crate::driver::{Request, RequestKind};
use crate::machine::Machine;
use crate::metrics::Served;
use crate::node::LineMode;
use crate::proto::{BusOp, OpKind, TxnId};

use super::{
    arena_downgrade_reserved, arena_local_done, arena_on_writeback, arena_purge_remote,
    arena_start_request, arena_txn_kind, ArenaOps, ProtocolEngine, ARENA_SLOT,
};

/// The MESI arena vocabulary: invalidating upgrades, exclusive misses for
/// writes.
const MESI_OPS: ArenaOps = ArenaOps {
    upgrade: OpKind::BusUpgrade,
    miss: |kind| match kind {
        RequestKind::Read => OpKind::BusRead,
        RequestKind::Write | RequestKind::Allocate | RequestKind::TestAndSet => {
            OpKind::BusReadExclusive
        }
        RequestKind::Writeback => unreachable!("writebacks use BusWriteback"),
    },
};

/// Write-invalidate MESI on a single snooping bus.
pub struct MesiEngine;

impl ProtocolEngine for MesiEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Mesi
    }

    fn start_request(&self, m: &mut Machine, node: NodeId, req: Request) -> TxnId {
        arena_start_request(m, &MESI_OPS, node, req)
    }

    fn on_op(&self, m: &mut Machine, _slot: usize, op: BusOp) {
        match op.kind {
            OpKind::BusRead => on_bus_read(m, &op),
            OpKind::BusReadExclusive => on_bus_read_exclusive(m, &op),
            OpKind::BusUpgrade => on_bus_upgrade(m, &op),
            OpKind::BusWriteback => arena_on_writeback(m, &MESI_OPS, &op),
            other => unreachable!("op {} dispatched on the MESI engine", other.name()),
        }
    }

    fn on_local_done(&self, m: &mut Machine, node: NodeId) {
        arena_local_done(m, &MESI_OPS, node);
    }

    fn check(&self, v: &dyn CoherenceView) -> Result<(), CoherenceViolation> {
        check::check_mesi(v)
    }
}

/// `BusRead`: fetch a readable copy. A dirty owner supplies the block and
/// downgrades to `S` (memory snarfs the flush); an `E` holder downgrades
/// to `S`; otherwise memory supplies. The requester installs `S` if any
/// other copy remains, else `E`.
fn on_bus_read(m: &mut Machine, op: &BusOp) {
    let line = op.line;
    let o_node = op.originator;
    if !m.txn_outstanding(o_node, op.txn) {
        return;
    }
    let home = m.home_column(line) as usize;
    let data;
    if let Some(owner) = m.registry_owner(line) {
        debug_assert_ne!(owner, o_node, "a dirty owner reads locally");
        let w_idx = owner.as_usize();
        let held = m.controllers[w_idx]
            .data_of(&line)
            .expect("modified line is resident");
        m.downgrade_to_shared(w_idx, line);
        m.memories[home].write(line, held);
        m.note_served(op.txn, Served::RemoteModified);
        data = held;
    } else {
        if let Some(&e) = m.arena_excl.get(&line) {
            if e != o_node {
                arena_downgrade_reserved(m, e.as_usize(), line);
            }
        }
        data = m.memories[home]
            .read_valid(&line)
            .unwrap_or_else(|| m.committed_version(line));
        m.note_served(op.txn, Served::Memory);
    }
    let o_idx = o_node.as_usize();
    if m.sharer_count(line) > 0 {
        m.set_line(o_idx, line, LineMode::Shared, data);
    } else {
        m.set_line(o_idx, line, LineMode::Reserved, data);
        m.arena_excl.insert(line, o_node);
    }
    m.finish_txn(o_node, op.txn, true);
}

/// `BusReadExclusive`: fetch ownership, invalidating every other copy.
/// For TAS the synchronization word is tested first; a taken word fails
/// the transaction without disturbing any copy.
fn on_bus_read_exclusive(m: &mut Machine, op: &BusOp) {
    let line = op.line;
    let o_node = op.originator;
    if !m.txn_outstanding(o_node, op.txn) {
        return;
    }
    let kind = arena_txn_kind(m, op.txn);
    let served = if m.registry_owner(line).is_some() {
        Served::RemoteModified
    } else {
        Served::Memory
    };
    if kind == RequestKind::TestAndSet && m.sync_word(line) != 0 {
        m.note_served(op.txn, served);
        m.finish_txn(o_node, op.txn, false);
        return;
    }
    arena_purge_remote(m, line, o_node);
    let home = m.home_column(line) as usize;
    let v = m.next_version(line);
    m.set_line(o_node.as_usize(), line, LineMode::Modified, v);
    m.memories[home].mark_invalid(&line);
    if kind == RequestKind::TestAndSet {
        m.line_entry(line).sync_word = 1;
    }
    m.note_served(op.txn, served);
    m.finish_txn(o_node, op.txn, true);
}

/// `BusUpgrade`: ownership for a copy we already hold shared. If a rival
/// writer invalidated our copy while the upgrade sat in the bus queue,
/// the upgrade lost the race and restarts as a full `BusReadExclusive`
/// (the invalidation freed our set slot, so the re-fetch installs without
/// a victim).
fn on_bus_upgrade(m: &mut Machine, op: &BusOp) {
    let line = op.line;
    let o_node = op.originator;
    let o_idx = o_node.as_usize();
    if !m.txn_outstanding(o_node, op.txn) {
        return;
    }
    let kind = arena_txn_kind(m, op.txn);
    if m.controllers[o_idx].mode_of(&line) != Some(LineMode::Shared) {
        m.note_retry(op.txn);
        let req = BusOp::new(OpKind::BusReadExclusive, line, o_node, op.txn)
            .with_allocate(kind == RequestKind::Allocate);
        m.emit(ARENA_SLOT, req, 0);
        return;
    }
    if kind == RequestKind::TestAndSet && m.sync_word(line) != 0 {
        m.note_served(op.txn, Served::Memory);
        m.finish_txn(o_node, op.txn, false);
        return;
    }
    arena_purge_remote(m, line, o_node);
    let home = m.home_column(line) as usize;
    let v = m.next_version(line);
    m.set_line(o_idx, line, LineMode::Modified, v);
    m.memories[home].mark_invalid(&line);
    if kind == RequestKind::TestAndSet {
        m.line_entry(line).sync_word = 1;
    }
    m.note_served(op.txn, Served::Memory);
    m.finish_txn(o_node, op.txn, true);
}
