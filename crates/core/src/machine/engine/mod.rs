//! The `ProtocolEngine` seam: pluggable coherence protocols.
//!
//! A [`Machine`] is constructed over one engine that defines its bus-op
//! vocabulary, per-line state machine and request/reply routing. The
//! machine owns everything protocol-independent — the event loop, buses
//! and their occupancy accounting, caches and the registry bookkeeping
//! (`Machine::set_line`/`Machine::clear_line`), transaction metrics
//! and completions, fault injection and tracing. The engine owns the
//! protocol: how a request starts (local, upgrade or miss), what each bus
//! operation does when it completes, and which quiescent invariants hold.
//!
//! Three engines exist:
//!
//! * [`MulticubeEngine`] — the paper's Appendix-A snooping write-invalidate
//!   protocol over the two-dimensional grid of row and column buses (the
//!   default; its handlers live in the sibling `machine` submodules).
//! * [`MesiEngine`] — classic write-invalidate MESI on a *single* shared
//!   snooping bus (row bus 0).
//! * [`DragonEngine`] — write-update Dragon on the same single bus.
//!
//! The two single-bus engines (the *arena*) model every coherence action
//! as one atomic bus transaction whose occupancy includes the supplier's
//! access latency — the classic un-pipelined snooping bus whose saturation
//! motivates the Multicube's bus hierarchy. The shared arena scaffolding
//! (miss/victim sequencing, local-access completion, write-back flushes)
//! lives here, parameterized by each engine's `ArenaOps` vocabulary.

pub(crate) mod dragon;
pub(crate) mod mesi;
pub(crate) mod multicube;

use multicube_mem::LineAddr;
use multicube_topology::NodeId;

use crate::check::{CoherenceView, CoherenceViolation};
use crate::config::EngineKind;
use crate::driver::{Request, RequestKind};
use crate::machine::{Event, Machine};
use crate::metrics::Served;
use crate::node::{LineMode, Outstanding, TxnPhase};
use crate::proto::{BusOp, OpKind, TxnId};

pub use dragon::DragonEngine;
pub use mesi::MesiEngine;
pub use multicube::MulticubeEngine;

/// A pluggable coherence protocol.
///
/// Engines are stateless unit structs; all mutable state lives on the
/// [`Machine`] (caches, registry, the arena side-tables). The machine
/// routes transaction starts, bus-op completions and local-access
/// completions to the engine selected by
/// [`MachineConfig::with_engine`](crate::MachineConfig::with_engine).
pub trait ProtocolEngine: Send + Sync {
    /// The engine's configuration tag.
    fn kind(&self) -> EngineKind;

    /// Stable lowercase name (CSV/CLI label).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Starts a transaction for `node`, which must be idle; mints and
    /// returns the transaction id.
    fn start_request(&self, m: &mut Machine, node: NodeId, req: Request) -> TxnId;

    /// A bus operation completed on `slot`: run the snoop actions of every
    /// agent on that bus.
    fn on_op(&self, m: &mut Machine, slot: usize, op: BusOp);

    /// A local (bus-free) cache access finished its latency.
    fn on_local_done(&self, m: &mut Machine, node: NodeId);

    /// The engine's quiescent coherence invariants, run over any
    /// [`CoherenceView`] (the machine itself, or a model-checker state).
    ///
    /// # Errors
    ///
    /// The first violated invariant.
    fn check(&self, v: &dyn CoherenceView) -> Result<(), CoherenceViolation>;
}

/// The engine implementing `kind`.
pub(crate) fn engine_for(kind: EngineKind) -> &'static dyn ProtocolEngine {
    match kind {
        EngineKind::Multicube => &MulticubeEngine,
        EngineKind::Mesi => &MesiEngine,
        EngineKind::Dragon => &DragonEngine,
    }
}

// ----------------------------------------------------------------------
// Shared single-bus (arena) scaffolding
// ----------------------------------------------------------------------

/// All arena traffic rides row bus 0: the single snooping bus.
pub(crate) const ARENA_SLOT: usize = 0;

/// The per-engine parts of the arena vocabulary.
pub(crate) struct ArenaOps {
    /// Bus op emitted for a write/TAS to a line held shared.
    pub upgrade: OpKind,
    /// Bus op emitted for each missing request kind.
    pub miss: fn(RequestKind) -> OpKind,
}

/// The request kind behind a transaction (defensive default: `Write`).
pub(crate) fn arena_txn_kind(m: &Machine, txn: TxnId) -> RequestKind {
    m.txn_info(txn)
        .map(|i| i.kind)
        .unwrap_or(RequestKind::Write)
}

/// Starts an arena transaction: local hit, shared-copy upgrade, dirty
/// write-back, or miss.
pub(crate) fn arena_start_request(
    m: &mut Machine,
    ops: &ArenaOps,
    node: NodeId,
    req: Request,
) -> TxnId {
    let txn = m.new_txn(node, req);
    let idx = node.as_usize();
    let mode = m.controllers[idx].mode_of(&req.line);
    let snoop = m.config.timing().snoop_latency_ns;

    let mut out = Outstanding {
        txn,
        kind: req.kind,
        line: req.line,
        issued_at: m.now(),
        phase: TxnPhase::Local,
        retries: 0,
        bus_ops: 0,
        victim: None,
    };

    match (req.kind, mode) {
        // Reads hit any resident copy; writes and TAS need an exclusive
        // one (M or E).
        (RequestKind::Read, Some(_))
        | (
            RequestKind::Write | RequestKind::Allocate | RequestKind::TestAndSet,
            Some(LineMode::Modified | LineMode::Reserved),
        ) => {
            m.set_outstanding(idx, out);
            m.events.schedule_after(snoop, Event::LocalDone { node });
        }
        // Write/TAS to a shared copy: the engine's upgrade/update op.
        (
            RequestKind::Write | RequestKind::Allocate | RequestKind::TestAndSet,
            Some(LineMode::Shared),
        ) => {
            out.phase = TxnPhase::Requested;
            m.set_outstanding(idx, out);
            let op = BusOp::new(ops.upgrade, req.line, node, txn)
                .with_allocate(req.kind == RequestKind::Allocate);
            m.emit(ARENA_SLOT, op, 0);
        }
        (RequestKind::Writeback, mode) => {
            if arena_is_dirty(m, node, req.line, mode) {
                out.phase = TxnPhase::Requested;
                m.set_outstanding(idx, out);
                let op = BusOp::new(OpKind::BusWriteback, req.line, node, txn);
                m.emit(ARENA_SLOT, op, 0);
            } else {
                // Nothing dirty to write back: complete immediately.
                m.set_outstanding(idx, out);
                m.events.schedule_after(0u64, Event::LocalDone { node });
            }
        }
        _ => arena_begin_miss(m, ops, node, out),
    }
    txn
}

/// Whether `node`'s copy of `line` is dirty: Modified, or Dragon's
/// shared-modified (a shared copy the node still owns in `arena_sm`).
fn arena_is_dirty(m: &Machine, node: NodeId, line: LineAddr, mode: Option<LineMode>) -> bool {
    mode == Some(LineMode::Modified)
        || (mode == Some(LineMode::Shared) && m.arena_sm.get(&line) == Some(&node))
}

/// Reserves a cache slot (writing back a dirty victim over the bus
/// first), then issues the miss request.
pub(crate) fn arena_begin_miss(
    m: &mut Machine,
    ops: &ArenaOps,
    node: NodeId,
    mut out: Outstanding,
) {
    let idx = node.as_usize();
    let line = out.line;
    if !m.controllers[idx].cache.contains(&line) {
        if let Some((victim, meta)) = m.controllers[idx]
            .cache
            .victim_for(&line)
            .map(|(l, c)| (l, *c))
        {
            if arena_is_dirty(m, node, victim, Some(meta.mode)) {
                m.metrics.victim_writebacks.incr();
                out.phase = TxnPhase::VictimWriteback;
                out.victim = Some(victim);
                let txn = out.txn;
                m.set_outstanding(idx, out);
                let op = BusOp::new(OpKind::BusWriteback, victim, node, txn);
                m.emit(ARENA_SLOT, op, 0);
                return;
            }
            // Clean victims are dropped silently.
            arena_drop_clean(m, idx, victim);
        }
    }
    out.phase = TxnPhase::Requested;
    let txn = out.txn;
    m.set_outstanding(idx, out);
    arena_issue_miss(m, ops, node, txn);
}

/// Emits the miss request appropriate for the outstanding kind.
pub(crate) fn arena_issue_miss(m: &mut Machine, ops: &ArenaOps, node: NodeId, txn: TxnId) {
    let Some(info) = m.txn_info(txn) else {
        return;
    };
    let (kind, line) = (info.kind, info.line);
    let op =
        BusOp::new((ops.miss)(kind), line, node, txn).with_allocate(kind == RequestKind::Allocate);
    m.emit(ARENA_SLOT, op, 0);
}

/// Completion of a local (bus-free) arena access. The line may have been
/// downgraded or invalidated by snooped traffic during the cache latency;
/// the access then restarts as the appropriate bus transaction.
pub(crate) fn arena_local_done(m: &mut Machine, ops: &ArenaOps, node: NodeId) {
    let idx = node.as_usize();
    let Some(out) = m.controllers[idx].outstanding else {
        return;
    };
    if out.phase != TxnPhase::Local {
        return;
    }
    let line = out.line;
    let mode = m.controllers[idx].mode_of(&line);
    match (out.kind, mode) {
        (RequestKind::Read, Some(_)) => {
            // Touch for LRU.
            m.controllers[idx].cache.get(&line);
            m.note_served(out.txn, Served::Local);
            m.finish_txn(node, out.txn, true);
        }
        (RequestKind::Write | RequestKind::Allocate, Some(LineMode::Modified)) => {
            let v = m.next_version(line);
            if let Some(cl) = m.controllers[idx].cache.get_mut(&line) {
                cl.data = v;
            }
            m.note_served(out.txn, Served::Local);
            m.finish_txn(node, out.txn, true);
        }
        (RequestKind::Write | RequestKind::Allocate, Some(LineMode::Reserved)) => {
            arena_silent_upgrade(m, idx, line);
            m.note_served(out.txn, Served::Local);
            m.finish_txn(node, out.txn, true);
        }
        (RequestKind::TestAndSet, Some(LineMode::Modified | LineMode::Reserved)) => {
            let success = m.sync_word(line) == 0;
            if success {
                m.line_entry(line).sync_word = 1;
                if mode == Some(LineMode::Reserved) {
                    arena_silent_upgrade(m, idx, line);
                } else {
                    let v = m.next_version(line);
                    if let Some(cl) = m.controllers[idx].cache.get_mut(&line) {
                        cl.data = v;
                    }
                }
            }
            m.note_served(out.txn, Served::Local);
            m.finish_txn(node, out.txn, success);
        }
        (RequestKind::Writeback, _) => {
            // The line went clean (or away) meanwhile.
            m.note_served(out.txn, Served::Local);
            m.finish_txn(node, out.txn, true);
        }
        (
            RequestKind::Write | RequestKind::Allocate | RequestKind::TestAndSet,
            Some(LineMode::Shared),
        ) => {
            // Downgraded by a snooped read while we waited: the write now
            // needs the bus after all.
            m.note_retry(out.txn);
            let mut out2 = out;
            out2.phase = TxnPhase::Requested;
            m.clear_outstanding(idx);
            m.set_outstanding(idx, out2);
            let op = BusOp::new(ops.upgrade, line, node, out.txn)
                .with_allocate(out.kind == RequestKind::Allocate);
            m.emit(ARENA_SLOT, op, 0);
        }
        _ => {
            // Invalidated while we waited: restart as a miss.
            m.note_retry(out.txn);
            let mut out2 = out;
            out2.phase = TxnPhase::Requested;
            m.clear_outstanding(idx);
            arena_begin_miss(m, ops, node, out2);
        }
    }
}

/// `BusWriteback` completion: either the victim phase of a miss (flush,
/// then issue the real request) or a standalone WRITEBACK transaction
/// (flush and downgrade in place).
pub(crate) fn arena_on_writeback(m: &mut Machine, ops: &ArenaOps, op: &BusOp) {
    let node = op.originator;
    let idx = node.as_usize();
    let Some(out) = m.controllers[idx].outstanding else {
        return;
    };
    if out.txn != op.txn {
        return;
    }
    match out.phase {
        TxnPhase::VictimWriteback => {
            if let Some(victim) = out.victim {
                arena_flush_evict(m, idx, victim);
            }
            if let Some(o) = m.controllers[idx].outstanding.as_mut() {
                o.phase = TxnPhase::Requested;
                o.victim = None;
            }
            arena_issue_miss(m, ops, node, op.txn);
        }
        TxnPhase::Requested => {
            arena_flush_downgrade(m, idx, op.line);
            m.note_served(op.txn, Served::Memory);
            m.finish_txn(node, op.txn, true);
        }
        TxnPhase::Local => {}
    }
}

/// Flushes a dirty victim to memory (if still dirty) and evicts it.
fn arena_flush_evict(m: &mut Machine, idx: usize, line: LineAddr) {
    let node = m.controllers[idx].node();
    let mode = m.controllers[idx].mode_of(&line);
    if arena_is_dirty(m, node, line, mode) {
        let data = m.controllers[idx]
            .data_of(&line)
            .expect("dirty line is resident");
        let home = m.home_column(line) as usize;
        m.memories[home].write(line, data);
        m.arena_sm.remove(&line);
    }
    arena_drop_clean(m, idx, line);
}

/// Flushes a dirty line to memory but keeps a clean shared copy
/// (standalone WRITEBACK semantics).
fn arena_flush_downgrade(m: &mut Machine, idx: usize, line: LineAddr) {
    let node = m.controllers[idx].node();
    let mode = m.controllers[idx].mode_of(&line);
    if !arena_is_dirty(m, node, line, mode) {
        return; // went clean (or away) while the op queued
    }
    let data = m.controllers[idx]
        .data_of(&line)
        .expect("dirty line is resident");
    let home = m.home_column(line) as usize;
    m.memories[home].write(line, data);
    if mode == Some(LineMode::Modified) {
        m.downgrade_to_shared(idx, line);
    }
    m.arena_sm.remove(&line);
}

/// Evicts a clean line, scrubbing the arena side tables.
pub(crate) fn arena_drop_clean(m: &mut Machine, idx: usize, line: LineAddr) {
    let node = m.controllers[idx].node();
    m.clear_line(idx, line);
    if m.arena_excl.get(&line) == Some(&node) {
        m.arena_excl.remove(&line);
    }
    if m.arena_sm.get(&line) == Some(&node) {
        m.arena_sm.remove(&line);
    }
}

/// Downgrades an exclusive-clean (`E`, Reserved) copy to shared: a remote
/// read observed it on the bus. Memory is already current.
pub(crate) fn arena_downgrade_reserved(m: &mut Machine, idx: usize, line: LineAddr) {
    if let Some(cl) = m.controllers[idx].cache.peek_mut(&line) {
        debug_assert_eq!(cl.mode, LineMode::Reserved);
        cl.mode = LineMode::Shared;
    }
    m.sharers_incr(line);
    m.arena_excl.remove(&line);
}

/// Silent `E → M` upgrade: a write to an exclusive-clean copy needs no
/// bus traffic, but memory's copy is stale from here on.
pub(crate) fn arena_silent_upgrade(m: &mut Machine, idx: usize, line: LineAddr) {
    let v = m.next_version(line);
    m.set_line(idx, line, LineMode::Modified, v);
    m.arena_excl.remove(&line);
    let home = m.home_column(line) as usize;
    m.memories[home].mark_invalid(&line);
}

/// Purges every cached copy of `line` except `except`'s, counting
/// invalidations of clean copies (the write-invalidate traffic axis).
pub(crate) fn arena_purge_remote(m: &mut Machine, line: LineAddr, except: NodeId) {
    for idx in 0..m.controllers.len() {
        if m.controllers[idx].node() == except {
            continue;
        }
        if let Some(prior) = m.clear_line(idx, line) {
            if prior != LineMode::Modified {
                m.metrics.invalidations.incr();
            }
        }
    }
    m.arena_excl.remove(&line);
    m.arena_sm.remove(&line);
}
