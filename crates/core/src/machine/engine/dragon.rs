//! Write-update Dragon on a single shared snooping bus.
//!
//! State mapping onto the Multicube cache fabric:
//!
//! * `M` (dirty, sole copy) — [`LineMode::Modified`]
//! * `E` (clean, sole copy) — [`LineMode::Reserved`] plus `arena_excl`
//! * `Sm` (dirty, shared; this cache supplies and writes back) —
//!   [`LineMode::Shared`] plus an `arena_sm` entry
//! * `Sc` (clean, shared) — [`LineMode::Shared`]
//!
//! Dragon never invalidates: a write to a shared line broadcasts a
//! `BusUpdate` that refreshes every remote copy in place, and the writer
//! becomes the shared-modified owner (`Sm`). Memory is only brought
//! current by write-backs, so the valid bit tracks "no dirty copy"
//! (neither `M` nor `Sm`). A write miss with other copies present is the
//! classic two-op sequence `BusRead` + `BusUpdate`.

use multicube_topology::NodeId;

use crate::check::{self, CoherenceView, CoherenceViolation};
use crate::config::EngineKind;
use crate::driver::{Request, RequestKind};
use crate::machine::Machine;
use crate::metrics::Served;
use crate::node::LineMode;
use crate::proto::{BusOp, OpKind, TxnId};

use super::{
    arena_downgrade_reserved, arena_issue_miss, arena_local_done, arena_on_writeback,
    arena_start_request, arena_txn_kind, ArenaOps, ProtocolEngine, ARENA_SLOT,
};

/// The Dragon arena vocabulary: updating "upgrades", every miss starts as
/// a `BusRead`.
const DRAGON_OPS: ArenaOps = ArenaOps {
    upgrade: OpKind::BusUpdate,
    miss: |kind| match kind {
        RequestKind::Read
        | RequestKind::Write
        | RequestKind::Allocate
        | RequestKind::TestAndSet => OpKind::BusRead,
        RequestKind::Writeback => unreachable!("writebacks use BusWriteback"),
    },
};

/// Write-update Dragon on a single snooping bus.
pub struct DragonEngine;

impl ProtocolEngine for DragonEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Dragon
    }

    fn start_request(&self, m: &mut Machine, node: NodeId, req: Request) -> TxnId {
        arena_start_request(m, &DRAGON_OPS, node, req)
    }

    fn on_op(&self, m: &mut Machine, _slot: usize, op: BusOp) {
        match op.kind {
            OpKind::BusRead => on_bus_read(m, &op),
            OpKind::BusUpdate => on_bus_update(m, &op),
            OpKind::BusWriteback => arena_on_writeback(m, &DRAGON_OPS, &op),
            other => unreachable!("op {} dispatched on the Dragon engine", other.name()),
        }
    }

    fn on_local_done(&self, m: &mut Machine, node: NodeId) {
        arena_local_done(m, &DRAGON_OPS, node);
    }

    fn check(&self, v: &dyn CoherenceView) -> Result<(), CoherenceViolation> {
        check::check_dragon(v)
    }
}

/// `BusRead`: fetch a copy. Supplier priority is the dirty owner (`M`,
/// which downgrades to `Sm` — memory stays stale), then the `Sm` holder,
/// then memory (downgrading any `E` holder to `Sc`). A read installs `Sc`
/// (or `E` when alone); a write with no other copies goes straight to
/// `M`, otherwise it installs `Sc` and chains a `BusUpdate`.
fn on_bus_read(m: &mut Machine, op: &BusOp) {
    let line = op.line;
    let o_node = op.originator;
    let o_idx = o_node.as_usize();
    if !m.txn_outstanding(o_node, op.txn) {
        return;
    }
    let kind = arena_txn_kind(m, op.txn);
    let home = m.home_column(line) as usize;
    let data;
    if let Some(owner) = m.registry_owner(line) {
        debug_assert_ne!(owner, o_node, "a dirty owner reads locally");
        let w_idx = owner.as_usize();
        let held = m.controllers[w_idx]
            .data_of(&line)
            .expect("modified line is resident");
        // M → Sm: the owner keeps supplying the dirty block; Dragon never
        // updates memory on a read.
        m.downgrade_to_shared(w_idx, line);
        m.arena_sm.insert(line, owner);
        m.note_served(op.txn, Served::RemoteModified);
        data = held;
    } else if let Some(&sm) = m.arena_sm.get(&line) {
        data = m.controllers[sm.as_usize()]
            .data_of(&line)
            .expect("shared-modified line is resident");
        m.note_served(op.txn, Served::RemoteModified);
    } else {
        if let Some(&e) = m.arena_excl.get(&line) {
            if e != o_node {
                arena_downgrade_reserved(m, e.as_usize(), line);
            }
        }
        data = m.memories[home]
            .read_valid(&line)
            .unwrap_or_else(|| m.committed_version(line));
        m.note_served(op.txn, Served::Memory);
    }
    let copies = m.sharer_count(line);
    match kind {
        RequestKind::Read => {
            if copies > 0 {
                m.set_line(o_idx, line, LineMode::Shared, data);
            } else {
                m.set_line(o_idx, line, LineMode::Reserved, data);
                m.arena_excl.insert(line, o_node);
            }
            m.finish_txn(o_node, op.txn, true);
        }
        RequestKind::Write | RequestKind::Allocate | RequestKind::TestAndSet => {
            if copies == 0 {
                if kind == RequestKind::TestAndSet && m.sync_word(line) != 0 {
                    // The word is taken: keep the fetched copy exclusive-
                    // clean and fail the transaction.
                    m.set_line(o_idx, line, LineMode::Reserved, data);
                    m.arena_excl.insert(line, o_node);
                    m.finish_txn(o_node, op.txn, false);
                    return;
                }
                let v = m.next_version(line);
                m.set_line(o_idx, line, LineMode::Modified, v);
                m.memories[home].mark_invalid(&line);
                if kind == RequestKind::TestAndSet {
                    m.line_entry(line).sync_word = 1;
                }
                m.finish_txn(o_node, op.txn, true);
            } else {
                // Copies exist: install shared, then broadcast the write.
                // The transaction completes when the BusUpdate dispatches.
                m.set_line(o_idx, line, LineMode::Shared, data);
                let upd = BusOp::new(OpKind::BusUpdate, line, o_node, op.txn)
                    .with_allocate(kind == RequestKind::Allocate);
                m.emit(ARENA_SLOT, upd, 0);
            }
        }
        RequestKind::Writeback => unreachable!("writebacks use BusWriteback"),
    }
}

/// `BusUpdate`: broadcast one written word; every remote copy is
/// refreshed in place, the writer becomes (or stays) the shared-modified
/// owner, and memory goes stale. If every other copy was evicted while
/// the update sat in the bus queue, the writer promotes to `M` instead.
fn on_bus_update(m: &mut Machine, op: &BusOp) {
    let line = op.line;
    let o_node = op.originator;
    let o_idx = o_node.as_usize();
    if !m.txn_outstanding(o_node, op.txn) {
        return;
    }
    let kind = arena_txn_kind(m, op.txn);
    if m.controllers[o_idx].mode_of(&line).is_none() {
        // Defensive: our copy vanished while the update queued (only we
        // can evict it, so this should not occur) — restart as a miss.
        m.note_retry(op.txn);
        arena_issue_miss(m, &DRAGON_OPS, o_node, op.txn);
        return;
    }
    // An update off the upgrade path has not crossed the bus before now;
    // account the service as a memory-class (bus) transaction.
    if m.txn_info(op.txn).map(|i| i.served) == Some(Served::Local) {
        m.note_served(op.txn, Served::Memory);
    }
    if kind == RequestKind::TestAndSet && m.sync_word(line) != 0 {
        // The word is taken: our shared copy stays as it is.
        m.finish_txn(o_node, op.txn, false);
        return;
    }
    let v = m.next_version(line);
    let mut remote = 0u32;
    for idx in 0..m.controllers.len() {
        if idx == o_idx {
            continue;
        }
        if let Some(cl) = m.controllers[idx].cache.peek_mut(&line) {
            cl.data = v;
            remote += 1;
            m.metrics.updates.incr();
        }
    }
    let home = m.home_column(line) as usize;
    if remote > 0 {
        // The writer becomes the shared-modified owner; a previous Sm
        // holder silently keeps a clean Sc copy (already refreshed above).
        if let Some(cl) = m.controllers[o_idx].cache.peek_mut(&line) {
            debug_assert_eq!(cl.mode, LineMode::Shared);
            cl.data = v;
        }
        m.arena_sm.insert(line, o_node);
    } else {
        // Last copy standing: promote to M.
        m.arena_sm.remove(&line);
        m.set_line(o_idx, line, LineMode::Modified, v);
    }
    m.memories[home].mark_invalid(&line);
    if kind == RequestKind::TestAndSet {
        m.line_entry(line).sync_word = 1;
    }
    m.finish_txn(o_node, op.txn, true);
}
