//! Byte-identical trace determinism.
//!
//! A seeded run must be a pure function of `(config, seed)` — including
//! every hash-map iteration the protocol or its diagnostics perform. These
//! tests run the same fixed-seed scenario twice on fresh machines and
//! require the full JSONL trace streams to match byte for byte. They
//! guard the deterministic-hasher and LineTable/slab plumbing: any map
//! whose iteration order leaks into protocol decisions or trace emission
//! shows up here as a diff.

use std::io::Write;
use std::sync::{Arc, Mutex};

use multicube::trace::{TraceFormat, TraceSink};
use multicube::{Machine, MachineConfig, Request, SyntheticSpec};
use multicube_mem::LineAddr;
use multicube_topology::NodeId;

/// A `Write` target the test can read back after the machine is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn traced_machine(seed: u64) -> (Machine, SharedBuf) {
    let mut m = Machine::new(MachineConfig::grid(4).unwrap(), seed).unwrap();
    let buf = SharedBuf::default();
    m.set_trace_sink(TraceSink::writer(Box::new(buf.clone()), TraceFormat::Jsonl));
    (m, buf)
}

/// One outstanding transaction at a time, mixed request kinds.
fn serial_trace(seed: u64) -> Vec<u8> {
    let (mut m, buf) = traced_machine(seed);
    for i in 0..300u64 {
        let node = NodeId::new((i % 16) as u32);
        let line = LineAddr::new(i % 48);
        let req = match i % 5 {
            0 => Request::write(line),
            1 => Request::allocate(line),
            2 => Request::test_and_set(line),
            3 => Request::writeback(line),
            _ => Request::read(line),
        };
        if m.submit(node, req).is_ok() {
            m.advance();
        }
    }
    m.run_to_quiescence();
    m.check_coherence().expect("coherent");
    drop(m);
    let bytes = buf.0.lock().unwrap().clone();
    assert!(!bytes.is_empty(), "trace was captured");
    bytes
}

/// Every node loaded at once each round, then the closed-loop synthetic
/// workload (which exercises the owned-line sampling path) on a fresh
/// machine sharing the buffer.
fn concurrent_trace(seed: u64) -> Vec<u8> {
    let (mut m, buf) = traced_machine(seed);
    for round in 0..10u64 {
        for n in 0..16u32 {
            let line = LineAddr::new((round * 7 + u64::from(n) * 3) % 40);
            let req = if (round + u64::from(n)) % 3 == 0 {
                Request::write(line)
            } else {
                Request::read(line)
            };
            let _ = m.submit(NodeId::new(n), req);
        }
        m.run_to_quiescence();
    }
    m.check_coherence().expect("coherent");
    drop(m);

    let (mut m, buf2) = traced_machine(seed);
    m.run_synthetic(&SyntheticSpec::default(), 10);
    drop(m);

    let mut bytes = buf.0.lock().unwrap().clone();
    bytes.extend_from_slice(&buf2.0.lock().unwrap());
    assert!(!bytes.is_empty(), "trace was captured");
    bytes
}

#[test]
fn serial_traces_are_byte_identical_across_runs() {
    for seed in [1u64, 42] {
        let a = serial_trace(seed);
        let b = serial_trace(seed);
        assert!(a == b, "serial trace diverged at seed {seed}");
    }
}

#[test]
fn concurrent_traces_are_byte_identical_across_runs() {
    for seed in [1u64, 42] {
        let a = concurrent_trace(seed);
        let b = concurrent_trace(seed);
        assert!(a == b, "concurrent trace diverged at seed {seed}");
    }
}

/// Pinned pre-`ProtocolEngine` trace fingerprints. The engine seam must
/// keep the default Multicube machine byte-identical at fixed seeds:
/// these digests were captured before the refactor and must never drift.
/// (The serial workload submits a fixed request sequence and draws no
/// randomness, so its digest is seed-independent.)
#[test]
fn multicube_traces_match_pre_refactor_fingerprints() {
    use multicube_sim::md5_hex;
    assert_eq!(
        md5_hex(&serial_trace(1)),
        "4d2f2546d675e38c62e6d1c07b19b99e"
    );
    assert_eq!(
        md5_hex(&serial_trace(42)),
        "4d2f2546d675e38c62e6d1c07b19b99e"
    );
    assert_eq!(
        md5_hex(&concurrent_trace(1)),
        "b09a608738491fbcd7fc9a57299de463"
    );
    assert_eq!(
        md5_hex(&concurrent_trace(42)),
        "9692576ff7ace77ad58595bb531578b2"
    );
}

#[test]
fn different_seeds_still_differ() {
    // Guard against the sinks accidentally capturing nothing comparable:
    // the synthetic workload is seed-driven, so different seeds must
    // produce different streams.
    let a = concurrent_trace(1);
    let b = concurrent_trace(2);
    assert!(a != b, "seeds 1 and 2 produced identical traces");
}
