//! Chaos tests: the §3 robustness claim under adversarial fault injection.
//!
//! The paper argues the protocol is self-healing — a controller "can, on
//! occasion, simply discard such requests without breaking the protocol",
//! because memory's per-line valid bit bounces misrouted requests back into
//! retries. These tests push far past the occasional discard: every fault
//! class the [`FaultPlan`] knows (dropped modified signals, lost and
//! duplicated bus requests, delayed MLT replica views, memory-bank NACKs,
//! controller blackouts) at simultaneously nonzero rates, with the property
//! under test always the same:
//!
//! * every submitted transaction completes;
//! * the quiescent machine passes every coherence invariant;
//! * the livelock watchdog stays silent unless its budget is deliberately
//!   set below what the fault rate demands.

use multicube::{
    FaultPlan, Machine, MachineConfig, Request, RequestKind, RetryPolicy, TraceSink, Watchdog,
    WatchdogAction,
};
use multicube_mem::LineAddr;
use multicube_topology::NodeId;
use proptest::prelude::*;

/// A compact encoding of one request.
#[derive(Debug, Clone, Copy)]
struct Step {
    node: u8,
    kind: u8,
    line: u8,
}

fn steps(max_len: usize) -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (any::<u8>(), 0u8..5, any::<u8>()).prop_map(|(node, kind, line)| Step { node, kind, line }),
        1..max_len,
    )
}

fn kind_of(code: u8) -> RequestKind {
    match code {
        0 | 1 => RequestKind::Read,
        2 => RequestKind::Write,
        3 => RequestKind::Allocate,
        4 => RequestKind::TestAndSet,
        _ => RequestKind::Writeback,
    }
}

/// Replays a step sequence serially (submit, drain); returns completions.
fn replay(machine: &mut Machine, steps: &[Step], lines: u64) -> u64 {
    let nodes = machine.side() * machine.side();
    let mut completions = 0u64;
    for s in steps {
        let node = NodeId::new(s.node as u32 % nodes);
        let line = LineAddr::new(s.line as u64 % lines);
        machine
            .submit(node, Request::new(kind_of(s.kind), line))
            .expect("serial submission to an idle node");
        completions += machine.run_to_quiescence().len() as u64;
    }
    completions
}

/// Replays concurrently: all nine nodes of a 3x3 grid in flight per round.
fn replay_concurrent(machine: &mut Machine, steps: &[Step], lines: u64) -> u64 {
    let mut completions = 0u64;
    for chunk in steps.chunks(9) {
        for (i, s) in chunk.iter().enumerate() {
            let node = NodeId::new(i as u32);
            let line = LineAddr::new(s.line as u64 % lines);
            machine
                .submit(node, Request::new(kind_of(s.kind), line))
                .unwrap();
        }
        completions += machine.run_to_quiescence().len() as u64;
    }
    completions
}

/// An adversarial composite plan: at least four fault classes at nonzero
/// rates, scaled by the generated percentages.
fn plan_of(loss_pct: u8, nack_pct: u8, drop_pct: u8, extra_pct: u8) -> FaultPlan {
    FaultPlan::default()
        .with_op_loss(loss_pct as f64 / 100.0)
        .with_memory_nack(nack_pct as f64 / 100.0)
        .with_signal_drop(drop_pct as f64 / 100.0)
        .with_op_duplicate(extra_pct as f64 / 100.0)
        .with_mlt_delay(extra_pct as f64 / 200.0, 2_000)
        .with_blackout(extra_pct as f64 / 400.0, 1_500)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any composite fault plan with a generous watchdog budget,
    /// serial traffic always completes, stays coherent, and never needs
    /// the watchdog.
    #[test]
    fn chaos_serial_traffic_survives(
        ops in steps(40),
        rates in (5u8..40, 5u8..50, 5u8..50, 0u8..40),
        seed in 0u64..64,
    ) {
        let (loss, nack, drop, extra) = rates;
        let config = MachineConfig::grid(3)
            .unwrap()
            .with_fault_plan(plan_of(loss, nack, drop, extra))
            .with_retry_policy(RetryPolicy::default().with_backoff(100, 10_000))
            .with_check_every(25);
        let mut m = Machine::new(config, seed).unwrap();
        let completions = replay(&mut m, &ops, 12);
        prop_assert_eq!(completions as usize, ops.len());
        m.check_coherence().unwrap();
        prop_assert_eq!(m.metrics().watchdog_trips.get(), 0);
    }

    /// The same holds under concurrent traffic, where injected faults
    /// interleave with genuine protocol races.
    #[test]
    fn chaos_concurrent_traffic_survives(
        ops in steps(36),
        rates in (5u8..35, 5u8..40, 5u8..40, 0u8..30),
        seed in 0u64..64,
    ) {
        let (loss, nack, drop, extra) = rates;
        let config = MachineConfig::grid(3)
            .unwrap()
            .with_fault_plan(plan_of(loss, nack, drop, extra))
            .with_retry_policy(RetryPolicy::default().with_backoff(200, 25_000))
            .with_check_every(25);
        let mut m = Machine::new(config, seed).unwrap();
        let completions = replay_concurrent(&mut m, &ops, 6);
        prop_assert_eq!(completions as usize, ops.len());
        m.check_coherence().unwrap();
        prop_assert_eq!(m.metrics().watchdog_trips.get(), 0);
    }

    /// A-1 capacity pressure composed with faults: a tiny MLT forces
    /// overflow write-backs while requests are being lost; the machine
    /// still converges with zero checker violations.
    #[test]
    fn mlt_overflow_under_op_loss_converges(ops in steps(40), loss in 10u8..40) {
        let config = MachineConfig::grid(3)
            .unwrap()
            .with_mlt_capacity(2)
            .with_fault_plan(FaultPlan::default().with_op_loss(loss as f64 / 100.0))
            .with_check_every(25);
        let mut m = Machine::new(config, 47).unwrap();
        let completions = replay(&mut m, &ops, 24);
        prop_assert_eq!(completions as usize, ops.len());
        m.check_coherence().unwrap();
    }
}

/// The chaos suite's multi-plan fault runs, shared by the determinism
/// tests below: one traced machine run per plan.
fn plan_trace(plan: &FaultPlan) -> (Vec<multicube::trace::TraceEvent>, String) {
    let config = MachineConfig::grid(3)
        .unwrap()
        .with_fault_plan(*plan)
        .with_retry_policy(RetryPolicy::default().with_backoff(100, 10_000));
    let mut m = Machine::new(config, 1234).unwrap();
    m.set_trace_sink(TraceSink::ring(1 << 16));
    let report = m.run_synthetic(&multicube::SyntheticSpec::default(), 20);
    (m.trace_events(), format!("{report}"))
}

fn multi_plans() -> Vec<FaultPlan> {
    vec![
        plan_of(20, 25, 30, 20),
        FaultPlan::default()
            .with_op_duplicate(0.3)
            .with_blackout(0.05, 2_000),
    ]
}

/// Deterministic fault-plan replay: identical (config, seed) gives a
/// byte-identical trace and an identical run report — for more than one
/// plan shape. The multi-plan fan-out runs on the worker pool, so this
/// also exercises plan runs executing concurrently.
#[test]
fn faulted_runs_are_deterministic() {
    let plans = multi_plans();
    let pool = multicube_sim::Pool::from_env();
    // Two replays of every plan, fanned out as independent pool jobs.
    let jobs: Vec<FaultPlan> = plans.iter().chain(plans.iter()).copied().collect();
    let results = pool.map(jobs, |_, plan| plan_trace(&plan));
    let results: Vec<_> = results.into_iter().map(|r| r.expect("plan run")).collect();
    for (i, _) in plans.iter().enumerate() {
        let (trace_a, report_a) = &results[i];
        let (trace_b, report_b) = &results[i + plans.len()];
        assert!(!trace_a.is_empty(), "plan {i} produced no trace events");
        assert_eq!(trace_a, trace_b, "plan {i} trace diverged across replays");
        assert_eq!(
            report_a, report_b,
            "plan {i} report diverged across replays"
        );
    }
}

/// Worker-count invariance: the multi-plan chaos traces are byte-identical
/// whether the pool runs them on 1 worker, 2, or the machine default —
/// fingerprinted with md5 like the CI cross-check.
#[test]
fn chaos_plan_traces_are_worker_count_invariant() {
    let plans = multi_plans();
    let fingerprint = |pool: &multicube_sim::Pool| -> Vec<String> {
        pool.map(plans.clone(), |_, plan| plan_trace(&plan))
            .into_iter()
            .map(|r| {
                let (trace, report) = r.expect("plan run");
                let mut bytes = Vec::new();
                for ev in &trace {
                    bytes.extend_from_slice(format!("{ev:?}\n").as_bytes());
                }
                bytes.extend_from_slice(report.as_bytes());
                multicube_sim::md5_hex(&bytes)
            })
            .collect()
    };
    let serial = fingerprint(&multicube_sim::Pool::new(1));
    let two = fingerprint(&multicube_sim::Pool::new(2));
    let default = fingerprint(&multicube_sim::Pool::from_env());
    assert_eq!(serial, two, "traces diverged between 1 and 2 workers");
    assert_eq!(
        serial, default,
        "traces diverged at the default worker count"
    );
}

/// The negative watchdog test: a retry budget of 1 is deliberately below
/// what a 60% op-loss rate demands, so escalation *must* fire — and the
/// escalated (fault-immune) retries still finish every transaction
/// coherently.
#[test]
fn starved_budget_trips_watchdog_and_escalation_completes() {
    let config = MachineConfig::grid(3)
        .unwrap()
        .with_fault_plan(
            FaultPlan::default()
                .with_op_loss(0.6)
                .with_memory_nack(0.5)
                .with_signal_drop(0.5),
        )
        .with_watchdog(
            Watchdog::default()
                .with_retry_budget(1)
                .with_action(WatchdogAction::Escalate),
        );
    let mut m = Machine::new(config, 7).unwrap();
    let mut completions = 0usize;
    let mut submitted = 0usize;
    for round in 0..20u64 {
        for i in 0..9u32 {
            let node = NodeId::new(i);
            let line = LineAddr::new((round + i as u64) % 5);
            let kind = if (round + i as u64).is_multiple_of(3) {
                RequestKind::Write
            } else {
                RequestKind::Read
            };
            m.submit(node, Request::new(kind, line)).unwrap();
            submitted += 1;
        }
        completions += m.run_to_quiescence().len();
    }
    assert_eq!(completions, submitted);
    m.check_coherence().unwrap();
    assert!(
        m.metrics().watchdog_trips.get() > 0,
        "a retry budget of 1 under 60% op loss must trip the watchdog"
    );
}

/// Fail-fast mode aborts the run instead of escalating.
#[test]
#[should_panic(expected = "watchdog")]
fn fail_fast_watchdog_panics_when_starved() {
    let config = MachineConfig::grid(2)
        .unwrap()
        .with_fault_plan(FaultPlan::default().with_signal_drop(0.99))
        .with_watchdog(
            Watchdog::default()
                .with_retry_budget(1)
                .with_action(WatchdogAction::FailFast),
        );
    let mut m = Machine::new(config, 3).unwrap();
    // Node 0 (column 0) takes line 1 modified; line 1's home column is 1,
    // so a later read must poll the modified signal — which almost always
    // drops, bouncing off memory's valid bit into retry after retry.
    m.submit(NodeId::new(0), Request::write(LineAddr::new(1)))
        .unwrap();
    m.run_to_quiescence();
    m.submit(NodeId::new(3), Request::read(LineAddr::new(1)))
        .unwrap();
    m.run_to_quiescence();
}
