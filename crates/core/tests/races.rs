//! Deterministic race scenarios: the §3 "Timing Considerations" cases,
//! staged with concurrent submissions so the bus-arbitration resolution
//! paths (losing-request retransmission, memory bounces, write-back
//! races) are exercised explicitly rather than only probabilistically.

use multicube::{Machine, MachineConfig, Request, RequestKind};
use multicube_mem::LineAddr;
use multicube_topology::NodeId;

fn machine(n: u32) -> Machine {
    Machine::new(MachineConfig::grid(n).unwrap(), 1234).unwrap()
}

/// "In case of a race between two requests for the same cache line (where
/// at least one of the requests is a READ-MOD), the first request
/// appearing on the home column ... determines the winner. The losing
/// request is retransmitted."
#[test]
fn two_writers_race_one_wins_then_other_follows() {
    let mut m = machine(4);
    let line = LineAddr::new(6);
    let a = NodeId::new(1);
    let b = NodeId::new(11);
    m.submit(a, Request::write(line)).unwrap();
    m.submit(b, Request::write(line)).unwrap();
    let done = m.run_to_quiescence();
    assert_eq!(done.len(), 2, "both writers complete");
    // Exactly one holds the line at the end; the loser's retry took it
    // from the winner, so the final owner is whoever retried last.
    let owners = [a, b]
        .iter()
        .filter(|&&n| m.controller(n).mode_of(&line) == Some(multicube::LineMode::Modified))
        .count();
    assert_eq!(owners, 1);
    // The memory bounce / retransmission machinery fired.
    let retries = m.metrics().write_unmodified.retries.get()
        + m.metrics().write_modified.retries.get()
        + m.metrics().memory_bounces.get();
    assert!(retries > 0, "a same-line write race must produce retries");
    m.check_coherence().unwrap();
}

/// Reader and writer race on the same unmodified line.
#[test]
fn reader_and_writer_race_stays_coherent() {
    for seed in 0..8u64 {
        let mut m = Machine::new(MachineConfig::grid(4).unwrap(), seed).unwrap();
        let line = LineAddr::new(9);
        let reader = NodeId::new(2);
        let writer = NodeId::new(13);
        m.submit(reader, Request::read(line)).unwrap();
        m.submit(writer, Request::write(line)).unwrap();
        let done = m.run_to_quiescence();
        assert_eq!(done.len(), 2);
        // Writer owns the line unless the reader's copy was installed
        // after the purge and then... no: at quiescence the writer holds
        // it modified and the reader either holds nothing (purged) or a
        // current shared copy is impossible while modified exists.
        assert_eq!(
            m.controller(writer).mode_of(&line),
            Some(multicube::LineMode::Modified)
        );
        m.check_coherence().unwrap();
    }
}

/// A victim write-back racing with a request for the victim line: the
/// §3 WRITE-BACK rule ("the table entry is removed first in order to
/// avoid the problem where an outstanding request attempts to acquire the
/// line, only to discover that it has already been written to memory").
#[test]
fn writeback_races_with_request_for_victim() {
    // 1-way cache: writing a second line evicts the first.
    let config = MachineConfig::grid(4)
        .unwrap()
        .with_snoop_cache(multicube_mem::CacheGeometry::new(1, 1));
    let mut m = Machine::new(config, 77).unwrap();
    let victim = LineAddr::new(100);
    let other = LineAddr::new(205);
    let evictor = NodeId::new(6);
    let chaser = NodeId::new(9);

    m.submit(evictor, Request::write(victim)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();

    // Concurrently: evictor displaces `victim` (forcing its write-back)
    // while the chaser requests the victim line.
    m.submit(evictor, Request::write(other)).unwrap();
    m.submit(chaser, Request::read(victim)).unwrap();
    let done = m.run_to_quiescence();
    assert_eq!(done.len(), 2);
    // The chaser got the correct (written) data no matter who won.
    assert_eq!(
        m.controller(chaser).data_of(&victim),
        Some(m.committed_version(victim)),
    );
    m.check_coherence().unwrap();
}

/// All nine processors of a 3x3 grid hammer a single line with mixed
/// reads and writes, repeatedly: the worst-case hot spot.
#[test]
fn full_grid_hot_spot_storm() {
    let mut m = machine(3);
    let line = LineAddr::new(4);
    for round in 0..12u32 {
        for i in 0..9u32 {
            let node = NodeId::new(i);
            let req = if (i + round) % 3 == 0 {
                Request::write(line)
            } else {
                Request::read(line)
            };
            m.submit(node, req).unwrap();
        }
        let done = m.run_to_quiescence();
        assert_eq!(done.len(), 9, "round {round}");
        m.check_coherence().unwrap();
    }
    // Races really happened.
    assert!(m.metrics().memory_bounces.get() > 0 || m.metrics().write_unmodified.retries.get() > 0);
}

/// Concurrent TAS storm on one lock line: exactly one success per epoch.
#[test]
fn tas_storm_grants_exactly_one() {
    let mut m = machine(3);
    let line = LineAddr::new(8);
    for _ in 0..5 {
        for i in 0..9u32 {
            m.submit(NodeId::new(i), Request::new(RequestKind::TestAndSet, line))
                .unwrap();
        }
        let done = m.run_to_quiescence();
        let successes = done.iter().filter(|c| c.success).count();
        assert_eq!(successes, 1, "exactly one winner per storm");
        // Release for the next round.
        let winner = done.iter().find(|c| c.success).unwrap().node;
        assert!(m.write_sync_word(winner, line, 0));
    }
    m.check_coherence().unwrap();
}

/// An ALLOCATE racing a READ of the same fresh line.
#[test]
fn allocate_races_reader() {
    let mut m = machine(4);
    let line = LineAddr::new(30);
    let io_node = NodeId::new(0);
    let reader = NodeId::new(15);
    m.submit(io_node, Request::new(RequestKind::Allocate, line))
        .unwrap();
    m.submit(reader, Request::read(line)).unwrap();
    let done = m.run_to_quiescence();
    assert_eq!(done.len(), 2);
    m.check_coherence().unwrap();
}

/// Explicit write-backs from two different owners in sequence, racing
/// with a third node's reads.
#[test]
fn writeback_request_interleaving() {
    let mut m = machine(4);
    let line = LineAddr::new(14);
    let a = NodeId::new(3);
    let b = NodeId::new(12);
    let reader = NodeId::new(10);

    m.submit(a, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();

    // a flushes while the reader fetches: both orders are legal, the
    // reader must simply see the committed version.
    m.submit(a, Request::new(RequestKind::Writeback, line))
        .unwrap();
    m.submit(reader, Request::read(line)).unwrap();
    m.run_to_quiescence();
    assert_eq!(
        m.controller(reader).data_of(&line),
        Some(m.committed_version(line))
    );

    m.submit(b, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    m.submit(b, Request::new(RequestKind::Writeback, line))
        .unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    let home = m.home_column(line);
    assert!(m.memory(home).is_valid(&line));
    assert_eq!(m.memory(home).peek(&line), m.committed_version(line));
    m.check_coherence().unwrap();
}
