//! Differential determinism suite for the parallel cube: the serial
//! (1-worker) execution is the reference, and every parallel worker
//! count must reproduce it byte for byte — per-plane machine traces,
//! depth-event digests, and the aggregate fingerprint — across all three
//! coherence engines.

use multicube::pdes::{run_cube, CubeConfig, CubeReport};
use multicube::EngineKind;

fn cfg(engine: EngineKind, workers: usize, capture: bool) -> CubeConfig {
    let mut cfg = CubeConfig::new(4);
    cfg.engine = engine;
    cfg.txns_per_node = 5;
    cfg.remote_ops = 40;
    cfg.remote_gap_ns = 250.0;
    cfg.remote_lines = 48;
    cfg.seed = 0xC0FFEE;
    cfg.workers = workers;
    cfg.capture_trace = capture;
    cfg
}

fn worker_counts() -> Vec<usize> {
    // 1 (serial reference), 2, and the environment default the CI
    // pool-determinism job varies.
    vec![1, 2, multicube_sim::Pool::from_env().workers().max(2)]
}

fn summary(report: &CubeReport) -> Vec<(u64, u64, Option<String>)> {
    report
        .planes
        .iter()
        .map(|p| {
            (
                p.run.transactions_completed,
                p.depth_digest,
                p.trace_md5.clone(),
            )
        })
        .collect()
}

#[test]
fn parallel_traces_match_serial_for_every_engine() {
    for engine in EngineKind::all() {
        let reference = run_cube(&cfg(engine, 1, true));
        let ref_fp = reference.fingerprint();
        let ref_summary = summary(&reference);
        assert!(
            reference.planes.iter().all(|p| p.trace_md5.is_some()),
            "{engine:?}: trace capture must produce a hash"
        );
        for workers in worker_counts() {
            let parallel = run_cube(&cfg(engine, workers, true));
            assert_eq!(
                summary(&parallel),
                ref_summary,
                "{engine:?} diverged at {workers} workers"
            );
            assert_eq!(
                parallel.fingerprint(),
                ref_fp,
                "{engine:?} fingerprint diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn distinct_seeds_give_distinct_runs() {
    let a = run_cube(&cfg(EngineKind::Multicube, 1, false));
    let mut other = cfg(EngineKind::Multicube, 1, false);
    other.seed ^= 1;
    let b = run_cube(&other);
    assert_ne!(a.fingerprint(), b.fingerprint());
}

#[test]
fn scheduler_round_structure_is_worker_invariant() {
    let serial = run_cube(&cfg(EngineKind::Multicube, 1, false));
    for workers in worker_counts() {
        let parallel = run_cube(&cfg(EngineKind::Multicube, workers, false));
        assert_eq!(parallel.pdes, serial.pdes, "workers={workers}");
        assert_eq!(parallel.events_delivered, serial.events_delivered);
    }
}
