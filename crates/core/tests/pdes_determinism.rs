//! Differential determinism suite for the parallel cube: the serial
//! (1-worker, plane-sharded, two-barrier, unbounded-window) execution is
//! the reference, and every parallel worker count, shard granularity,
//! executor, and window policy must reproduce it byte for byte —
//! per-plane machine traces, depth-event digests, and the aggregate
//! fingerprint — across all three coherence engines.

use multicube::pdes::{run_cube, CubeConfig, CubeReport, CubeShards};
use multicube::EngineKind;
use multicube_sim::pdes::ExecutorKind;

fn cfg(engine: EngineKind, workers: usize, capture: bool) -> CubeConfig {
    let mut cfg = CubeConfig::new(4);
    cfg.engine = engine;
    cfg.txns_per_node = 5;
    cfg.remote_ops = 40;
    cfg.remote_gap_ns = 250.0;
    cfg.remote_lines = 48;
    cfg.seed = 0xC0FFEE;
    cfg.workers = workers;
    cfg.capture_trace = capture;
    cfg
}

fn worker_counts() -> Vec<usize> {
    // 1 (serial reference), 2, and the environment default the CI
    // pool-determinism job varies.
    vec![1, 2, multicube_sim::Pool::from_env().workers().max(2)]
}

fn summary(report: &CubeReport) -> Vec<(u64, u64, Option<String>)> {
    report
        .planes
        .iter()
        .map(|p| {
            (
                p.run.transactions_completed,
                p.depth_digest,
                p.trace_md5.clone(),
            )
        })
        .collect()
}

#[test]
fn parallel_traces_match_serial_for_every_engine() {
    for engine in EngineKind::all() {
        let reference = run_cube(&cfg(engine, 1, true));
        let ref_fp = reference.fingerprint();
        let ref_summary = summary(&reference);
        assert!(
            reference.planes.iter().all(|p| p.trace_md5.is_some()),
            "{engine:?}: trace capture must produce a hash"
        );
        for workers in worker_counts() {
            let parallel = run_cube(&cfg(engine, workers, true));
            assert_eq!(
                summary(&parallel),
                ref_summary,
                "{engine:?} diverged at {workers} workers"
            );
            assert_eq!(
                parallel.fingerprint(),
                ref_fp,
                "{engine:?} fingerprint diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn every_granularity_executor_and_window_matches_the_reference() {
    let reference = run_cube(&cfg(EngineKind::Multicube, 1, true));
    let ref_fp = reference.fingerprint();
    let ref_summary = summary(&reference);
    for shards in [CubeShards::Plane, CubeShards::Column] {
        for executor in [ExecutorKind::TwoBarrier, ExecutorKind::WorkStealing] {
            for adaptive in [false, true] {
                for workers in worker_counts() {
                    let mut c = cfg(EngineKind::Multicube, workers, true);
                    c.shards = shards;
                    c.executor = executor;
                    c.adaptive_window = adaptive;
                    let report = run_cube(&c);
                    let label =
                        format!("{shards:?}/{executor:?}/adaptive={adaptive}/workers={workers}");
                    assert_eq!(summary(&report), ref_summary, "{label} diverged");
                    assert_eq!(report.fingerprint(), ref_fp, "{label} fingerprint diverged");
                }
            }
        }
    }
}

#[test]
fn distinct_seeds_give_distinct_runs() {
    let a = run_cube(&cfg(EngineKind::Multicube, 1, false));
    let mut other = cfg(EngineKind::Multicube, 1, false);
    other.seed ^= 1;
    let b = run_cube(&other);
    assert_ne!(a.fingerprint(), b.fingerprint());
}

#[test]
fn scheduler_round_structure_is_worker_invariant() {
    // Round structure depends on the shard graph and window policy but
    // never on the worker count or executor: the window is a pure
    // function of the published bounds.
    for shards in [CubeShards::Plane, CubeShards::Column] {
        for adaptive in [false, true] {
            let mut serial_cfg = cfg(EngineKind::Multicube, 1, false);
            serial_cfg.shards = shards;
            serial_cfg.adaptive_window = adaptive;
            let serial = run_cube(&serial_cfg);
            for workers in worker_counts() {
                for executor in [ExecutorKind::TwoBarrier, ExecutorKind::WorkStealing] {
                    let mut c = serial_cfg.clone();
                    c.workers = workers;
                    c.executor = executor;
                    let parallel = run_cube(&c);
                    assert_eq!(
                        parallel.pdes, serial.pdes,
                        "{shards:?}/adaptive={adaptive}/workers={workers}/{executor:?}"
                    );
                    assert_eq!(parallel.events_delivered, serial.events_delivered);
                }
            }
        }
    }
}
