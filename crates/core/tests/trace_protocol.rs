//! Trace-driven protocol tests: the structured trace layer must expose the
//! exact Appendix-A operation chains, and the disabled sink must stay
//! silent.

use multicube::trace::{TracePoint, TraceSink};
use multicube::{FaultPlan, Machine, MachineConfig, OpKind, Request};
use multicube_mem::LineAddr;

fn grid4() -> Machine {
    Machine::new(MachineConfig::grid(4).unwrap(), 31).unwrap()
}

/// A read miss to a line held modified in a remote column follows the
/// paper's four-operation chain, in order:
/// `READ(ROW,REQ) → READ(COL,REQ,REMOVE) → READ(COL,REPLY,UPD) →
/// READ(ROW,REPLY,UPD)`.
#[test]
fn remote_modified_read_follows_the_appendix_a_chain() {
    let mut m = grid4();
    let line = LineAddr::new(1 + 4); // home column 1
    let owner = m.config().topology().node(3, 3);
    let reader = m.config().topology().node(0, 2);

    // Stage: the owner takes the line modified, quietly.
    m.submit(owner, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();

    // Trace only the read under test.
    m.set_trace_sink(TraceSink::ring(1024));
    m.submit(reader, Request::read(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();

    let completed: Vec<OpKind> = m
        .trace_events()
        .into_iter()
        .filter(|e| e.point == TracePoint::OpComplete && e.line == line)
        .map(|e| e.kind.expect("operation events carry a kind"))
        .collect();
    assert_eq!(
        completed,
        vec![
            OpKind::ReadRowRequest,
            OpKind::ReadColRequestRemove,
            OpKind::ReadColReplyUpdate,
            OpKind::ReadRowReplyUpdate,
            // The UPD legs leave memory stale until the home column's
            // bank absorbs the data: one trailing memory-update op.
            OpKind::WritebackColUpdateMemory,
        ],
        "read of a remotely-modified line must follow the Appendix-A chain"
    );

    // Every completion was preceded by its own start on the same bus.
    let events = m.trace_events();
    for done in events
        .iter()
        .filter(|e| e.point == TracePoint::OpComplete && e.line == line)
    {
        assert!(
            events.iter().any(|s| s.point == TracePoint::OpStart
                && s.kind == done.kind
                && s.bus == done.bus
                && s.at <= done.at),
            "no op-start observed for {:?}",
            done.kind
        );
    }

    // The MLT bookkeeping of the REMOVE leg is visible too.
    assert!(
        events
            .iter()
            .any(|e| e.point == TracePoint::MltRemove && e.line == line),
        "the column MLT replicas must drop the line"
    );
}

/// The default sink records nothing: no events accumulate anywhere.
#[test]
fn disabled_sink_emits_nothing() {
    let mut m = grid4();
    assert!(!m.trace_sink().is_enabled());
    let line = LineAddr::new(9);
    let writer = m.config().topology().node(1, 1);
    let reader = m.config().topology().node(2, 2);
    m.submit(writer, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    m.submit(reader, Request::read(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    assert!(m.trace_events().is_empty());
    assert!(m.trace_sink().is_empty());
}

/// The ring buffer is bounded: a long run cannot grow it past capacity.
#[test]
fn ring_sink_stays_bounded_under_load() {
    let mut m = grid4();
    m.set_trace_sink(TraceSink::ring(16));
    for i in 0..8u64 {
        let node = m.config().topology().node((i % 4) as u32, 0);
        m.submit(node, Request::write(LineAddr::new(100 + i)))
            .unwrap();
        m.advance().unwrap();
        m.run_to_quiescence();
    }
    let events = m.trace_events();
    assert_eq!(events.len(), 16, "ring must cap at its capacity");
    // Newest events survive: timestamps are non-decreasing and end late.
    assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
}

/// Retries surface as structured events: a dropped modified signal forces
/// the read to bounce off invalid memory and retransmit.
#[test]
fn dropped_signals_surface_as_retry_events() {
    let config = MachineConfig::grid(4)
        .unwrap()
        .with_fault_plan(FaultPlan::default().with_signal_drop(0.9));
    let mut m = Machine::new(config, 7).unwrap();
    let line = LineAddr::new(1 + 4);
    let owner = m.config().topology().node(3, 3);
    let reader = m.config().topology().node(0, 2);
    m.submit(owner, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();

    m.set_trace_sink(TraceSink::ring(4096));
    m.submit(reader, Request::read(line)).unwrap();
    // With p=0.9 the signal is dropped (deterministically, for this seed)
    // before a poll finally succeeds and the read completes.
    m.advance().unwrap();
    let events = m.trace_events();
    assert!(
        events.iter().any(|e| e.point == TracePoint::SignalDrop),
        "signal drops must be traced"
    );
    assert!(
        events.iter().any(|e| e.point == TracePoint::Retry),
        "memory bounces must surface as retry events"
    );
}
