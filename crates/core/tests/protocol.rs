//! Protocol-level integration tests: transaction flows, bus-operation
//! counts (the §6 cost claims), races, robustness, and determinism.

use multicube::{
    FaultPlan, LatencyMode, Machine, MachineConfig, Request, RequestKind, SyntheticSpec,
};
use multicube_mem::LineAddr;
use multicube_topology::NodeId;

fn machine(n: u32) -> Machine {
    Machine::new(MachineConfig::grid(n).unwrap(), 99).unwrap()
}

/// A line whose home column is `col` in an `n`-wide grid.
fn line_with_home(n: u32, col: u32, k: u64) -> LineAddr {
    LineAddr::new(k * n as u64 + col as u64)
}

#[test]
fn read_miss_unmodified_completes_and_caches_shared() {
    let mut m = machine(4);
    let node = NodeId::new(0);
    let line = LineAddr::new(10);
    m.submit(node, Request::read(line)).unwrap();
    let done = m.advance().unwrap();
    assert_eq!(done.node, node);
    assert!(done.success);
    assert_eq!(
        m.controller(node).mode_of(&line),
        Some(multicube::LineMode::Shared)
    );
    m.run_to_quiescence();
    m.check_coherence().unwrap();
    assert_eq!(m.metrics().read_unmodified.count, 1);
}

#[test]
fn write_miss_takes_ownership_and_invalidates_memory() {
    let mut m = machine(4);
    let node = NodeId::new(5);
    let line = LineAddr::new(3);
    m.submit(node, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    assert_eq!(
        m.controller(node).mode_of(&line),
        Some(multicube::LineMode::Modified)
    );
    let home = m.home_column(line);
    assert!(!m.memory(home).is_valid(&line));
    m.check_coherence().unwrap();
}

#[test]
fn read_after_remote_write_returns_latest_data_and_updates_memory() {
    let mut m = machine(4);
    let writer = NodeId::new(0);
    let reader = NodeId::new(15); // different row AND column
    let line = LineAddr::new(7);

    m.submit(writer, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    let written = m.committed_version(line);

    m.submit(reader, Request::read(line)).unwrap();
    let done = m.advance().unwrap();
    assert_eq!(done.kind, RequestKind::Read);
    m.run_to_quiescence();

    // Both copies shared, value is the written version, memory updated.
    assert_eq!(m.controller(reader).data_of(&line), Some(written));
    assert_eq!(
        m.controller(writer).mode_of(&line),
        Some(multicube::LineMode::Shared)
    );
    let home = m.home_column(line);
    assert!(m.memory(home).is_valid(&line));
    m.check_coherence().unwrap();
    assert_eq!(m.metrics().read_modified.count, 1);
}

#[test]
fn write_invalidates_all_shared_copies() {
    let mut m = machine(4);
    let line = LineAddr::new(21);
    // Four scattered readers cache the line shared.
    let readers = [0u32, 5, 10, 15].map(NodeId::new);
    for r in readers {
        m.submit(r, Request::read(line)).unwrap();
        m.advance().unwrap();
    }
    m.run_to_quiescence();
    // A fifth node writes.
    let writer = NodeId::new(6);
    m.submit(writer, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    for r in readers {
        assert_eq!(m.controller(r).mode_of(&line), None, "{r} not purged");
    }
    assert_eq!(
        m.controller(writer).mode_of(&line),
        Some(multicube::LineMode::Modified)
    );
    assert!(m.metrics().invalidations.get() >= 4);
    m.check_coherence().unwrap();
}

#[test]
fn ownership_transfers_between_writers() {
    let mut m = machine(4);
    let line = LineAddr::new(2);
    let a = NodeId::new(1);
    let b = NodeId::new(14);
    m.submit(a, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    m.submit(b, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    assert_eq!(m.controller(a).mode_of(&line), None);
    assert_eq!(
        m.controller(b).mode_of(&line),
        Some(multicube::LineMode::Modified)
    );
    // Memory was never updated by the cache-to-cache transfer.
    assert!(!m.memory(m.home_column(line)).is_valid(&line));
    m.check_coherence().unwrap();
    assert_eq!(m.metrics().write_modified.count, 1);
}

// ---------------------------------------------------------------------
// §6 cost claims ("T-6.1")
// ---------------------------------------------------------------------

/// READ of an unmodified line: at most 4 bus operations.
#[test]
fn cost_read_unmodified_at_most_four_ops() {
    for n in [4u32, 8] {
        let mut m = machine(n);
        // Requester away from the home column so the full path is used.
        let line = line_with_home(n, 0, 1);
        let node = m.config().topology().node(1, 2);
        m.submit(node, Request::read(line)).unwrap();
        m.advance().unwrap();
        m.run_to_quiescence();
        let ops = m.metrics().read_unmodified.bus_ops.max().unwrap();
        assert!(ops <= 4.0, "n={n}: read-unmodified used {ops} ops");
    }
}

/// READ of a modified line: at most 5 bus operations.
#[test]
fn cost_read_modified_at_most_five_ops() {
    let n = 8;
    let mut m = machine(n);
    let line = line_with_home(n, 0, 1);
    // Owner in a different row, column and home column than the reader.
    let owner = m.config().topology().node(5, 5);
    let reader = m.config().topology().node(2, 3);
    m.submit(owner, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();

    m.submit(reader, Request::read(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    let ops = m.metrics().read_modified.bus_ops.max().unwrap();
    assert!(ops <= 5.0, "read-modified used {ops} ops");
    m.check_coherence().unwrap();
}

/// READ-MOD of a modified line: at most 4 bus operations.
#[test]
fn cost_readmod_modified_at_most_four_ops() {
    let n = 8;
    let mut m = machine(n);
    let line = line_with_home(n, 0, 1);
    let owner = m.config().topology().node(5, 5);
    let writer = m.config().topology().node(2, 3);
    m.submit(owner, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();

    m.submit(writer, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    let ops = m.metrics().write_modified.bus_ops.max().unwrap();
    assert!(ops <= 4.0, "readmod-modified used {ops} ops");
}

/// READ-MOD of an unmodified line: broadcast of n+1 row ops + 3 column ops
/// (plus the final MLT insert on the originator's column).
#[test]
fn cost_readmod_unmodified_broadcast_shape() {
    let n = 4;
    let mut m = machine(n);
    let line = line_with_home(n, 0, 1);
    let writer = m.config().topology().node(1, 2);
    m.submit(writer, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    let row = m.metrics().write_unmodified.row_ops.max().unwrap();
    let col = m.metrics().write_unmodified.col_ops.max().unwrap();
    // n+1 row ops: the original request plus one purge per row.
    assert_eq!(row, (n + 1) as f64, "row ops");
    // 3 column ops in the paper's accounting (request, reply) plus the
    // final INSERT on the originator's column.
    assert!(col <= 4.0, "col ops = {col}");
    m.check_coherence().unwrap();
}

// ---------------------------------------------------------------------
// ALLOCATE
// ---------------------------------------------------------------------

#[test]
fn allocate_behaves_like_readmod_but_cheaper_on_the_bus() {
    let n = 4;
    let mut m1 = machine(n);
    let mut m2 = machine(n);
    let line = line_with_home(n, 0, 1);
    let node = m1.config().topology().node(1, 2);

    m1.submit(node, Request::new(RequestKind::Write, line))
        .unwrap();
    m1.advance().unwrap();
    let t_write = m1.run_to_quiescence();

    m2.submit(node, Request::new(RequestKind::Allocate, line))
        .unwrap();
    m2.advance().unwrap();
    let t_alloc = m2.run_to_quiescence();

    assert!(t_write.is_empty() && t_alloc.is_empty());
    assert_eq!(
        m2.controller(node).mode_of(&line),
        Some(multicube::LineMode::Modified)
    );
    // Same op count, but the allocate acknowledge is address-length, so
    // the allocate transaction holds buses for less total time.
    let w = m1.metrics().write_unmodified.latency_ns.mean();
    let a = m2.metrics().write_unmodified.latency_ns.mean();
    assert!(a < w, "allocate {a} should beat write {w}");
    m1.check_coherence().unwrap();
    m2.check_coherence().unwrap();
}

// ---------------------------------------------------------------------
// WRITE-BACK and victim handling
// ---------------------------------------------------------------------

#[test]
fn explicit_writeback_restores_memory() {
    let mut m = machine(4);
    let node = NodeId::new(9);
    let line = LineAddr::new(13);
    m.submit(node, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    let v = m.committed_version(line);

    m.submit(node, Request::new(RequestKind::Writeback, line))
        .unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    let home = m.home_column(line);
    assert!(m.memory(home).is_valid(&line));
    assert_eq!(m.memory(home).peek(&line), v);
    assert_eq!(
        m.controller(node).mode_of(&line),
        Some(multicube::LineMode::Shared)
    );
    m.check_coherence().unwrap();
}

#[test]
fn writeback_of_clean_line_is_a_noop() {
    let mut m = machine(4);
    let node = NodeId::new(0);
    m.submit(node, Request::new(RequestKind::Writeback, LineAddr::new(1)))
        .unwrap();
    let done = m.advance().unwrap();
    assert!(done.success);
    assert_eq!(m.metrics().local_hits.count, 1);
}

#[test]
fn victim_writeback_preserves_dirty_data() {
    // Tiny cache: 1 set, 1 way — every distinct line evicts the previous.
    let config = MachineConfig::grid(4)
        .unwrap()
        .with_snoop_cache(multicube_mem::CacheGeometry::new(1, 1));
    let mut m = Machine::new(config, 3).unwrap();
    let node = NodeId::new(6);
    let l1 = LineAddr::new(100);
    let l2 = LineAddr::new(200);

    m.submit(node, Request::write(l1)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    let v1 = m.committed_version(l1);

    // Writing l2 forces l1 out through a victim write-back.
    m.submit(node, Request::write(l2)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();

    assert_eq!(m.controller(node).mode_of(&l1), None);
    let home1 = m.home_column(l1);
    assert!(m.memory(home1).is_valid(&l1));
    assert_eq!(m.memory(home1).peek(&l1), v1);
    assert!(m.metrics().victim_writebacks.get() >= 1);
    m.check_coherence().unwrap();
}

// ---------------------------------------------------------------------
// Robustness: dropped modified signals bounce off the valid bit
// ---------------------------------------------------------------------

#[test]
fn dropped_signals_still_complete_via_memory_bounce() {
    let config = MachineConfig::grid(4)
        .unwrap()
        .with_fault_plan(FaultPlan::default().with_signal_drop(0.7));
    let mut m = Machine::new(config, 11).unwrap();
    let line = LineAddr::new(5);
    let owner = NodeId::new(0);
    m.submit(owner, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();

    // Many remote reads; each must complete despite dropped signals.
    for reader in [15u32, 10, 7, 9] {
        let reader = NodeId::new(reader);
        m.submit(reader, Request::read(line)).unwrap();
        let done = m.advance().unwrap();
        assert!(done.success);
        m.run_to_quiescence();
    }
    m.check_coherence().unwrap();
}

// ---------------------------------------------------------------------
// Latency-reduction modes (§5)
// ---------------------------------------------------------------------

#[test]
fn requested_word_first_reduces_latency() {
    let line = LineAddr::new(6);
    let mut base = machine(4);
    let node = NodeId::new(10);
    base.submit(node, Request::read(line)).unwrap();
    let slow = base.advance().unwrap().latency;

    let config = MachineConfig::grid(4)
        .unwrap()
        .with_latency_mode(LatencyMode::RequestedWordFirst);
    let mut rwf = Machine::new(config, 99).unwrap();
    rwf.submit(node, Request::read(line)).unwrap();
    let fast = rwf.advance().unwrap().latency;
    rwf.run_to_quiescence();
    rwf.check_coherence().unwrap();
    assert!(fast < slow, "RWF {fast} should beat {slow}");
}

#[test]
fn pieces_mode_preserves_correctness() {
    let config = MachineConfig::grid(4)
        .unwrap()
        .with_latency_mode(LatencyMode::Pieces { words: 4 });
    let mut m = Machine::new(config, 5).unwrap();
    let writer = NodeId::new(0);
    let reader = NodeId::new(15);
    let line = LineAddr::new(9);
    m.submit(writer, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    let v = m.committed_version(line);
    m.submit(reader, Request::read(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    assert_eq!(m.controller(reader).data_of(&line), Some(v));
    m.check_coherence().unwrap();
}

// ---------------------------------------------------------------------
// Test-and-set
// ---------------------------------------------------------------------

#[test]
fn tas_succeeds_once_then_fails() {
    let mut m = machine(4);
    let line = LineAddr::new(17);
    let a = NodeId::new(3);
    let b = NodeId::new(12);

    m.submit(a, Request::new(RequestKind::TestAndSet, line))
        .unwrap();
    let first = m.advance().unwrap();
    assert!(first.success);
    m.run_to_quiescence();
    assert_eq!(
        m.controller(a).mode_of(&line),
        Some(multicube::LineMode::Modified)
    );

    // B's test-and-set fails; the line stays with A.
    m.submit(b, Request::new(RequestKind::TestAndSet, line))
        .unwrap();
    let second = m.advance().unwrap();
    assert!(!second.success);
    m.run_to_quiescence();
    assert_eq!(
        m.controller(a).mode_of(&line),
        Some(multicube::LineMode::Modified)
    );
    assert_eq!(m.controller(b).mode_of(&line), None);
    m.check_coherence().unwrap();
    assert_eq!(m.metrics().tas_success.count, 1);
    assert_eq!(m.metrics().tas_fail.count, 1);
}

#[test]
fn tas_lock_release_allows_next_acquire() {
    let mut m = machine(4);
    let line = LineAddr::new(17);
    let a = NodeId::new(3);
    let b = NodeId::new(12);

    m.submit(a, Request::new(RequestKind::TestAndSet, line))
        .unwrap();
    assert!(m.advance().unwrap().success);
    m.run_to_quiescence();

    // A releases: clears the sync word in its owned copy.
    assert!(m.write_sync_word(a, line, 0));

    m.submit(b, Request::new(RequestKind::TestAndSet, line))
        .unwrap();
    let done = m.advance().unwrap();
    assert!(done.success, "lock released, B must acquire");
    m.run_to_quiescence();
    assert_eq!(
        m.controller(b).mode_of(&line),
        Some(multicube::LineMode::Modified)
    );
    m.check_coherence().unwrap();
}

// ---------------------------------------------------------------------
// Determinism and synthetic runs
// ---------------------------------------------------------------------

#[test]
fn identical_seeds_produce_identical_runs() {
    let spec = SyntheticSpec::default().with_request_rate_per_ms(20.0);
    let run = |seed: u64| {
        let mut m = Machine::new(MachineConfig::grid(4).unwrap(), seed).unwrap();
        let r = m.run_synthetic(&spec, 50);
        (
            r.efficiency,
            r.row_bus_ops,
            r.col_bus_ops,
            r.transactions_completed,
        )
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43));
}

#[test]
fn synthetic_run_is_coherent_and_efficient_at_low_rate() {
    let spec = SyntheticSpec::default().with_request_rate_per_ms(1.0);
    let mut m = Machine::new(MachineConfig::grid(4).unwrap(), 8).unwrap();
    let report = m.run_synthetic(&spec, 100);
    assert!(report.efficiency > 0.9, "efficiency {}", report.efficiency);
    assert_eq!(report.transactions_completed, 1600);
}

#[test]
fn synthetic_efficiency_decreases_with_request_rate() {
    let run = |rate: f64| {
        let spec = SyntheticSpec::default().with_request_rate_per_ms(rate);
        let mut m = Machine::new(MachineConfig::grid(4).unwrap(), 21).unwrap();
        m.run_synthetic(&spec, 150).efficiency
    };
    let low = run(2.0);
    let high = run(100.0);
    assert!(
        low > high,
        "efficiency should fall with load: low-rate {low} vs high-rate {high}"
    );
}

#[test]
fn snarfing_reduces_misses() {
    let line = LineAddr::new(30);
    let config = MachineConfig::grid(4).unwrap().with_snarfing(true);
    let mut m = Machine::new(config, 2).unwrap();
    let a = NodeId::new(1);
    let b = NodeId::new(2); // same row as a

    // Both read the line; then a write purges both.
    for r in [a, b] {
        m.submit(r, Request::read(line)).unwrap();
        m.advance().unwrap();
        m.run_to_quiescence();
    }
    let writer = NodeId::new(15);
    m.submit(writer, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();

    // a re-reads: the reply passes along row 0 where b recently held the
    // line — b may snarf it.
    m.submit(a, Request::read(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    assert!(
        m.metrics().snarfs.get() >= 1,
        "b should have snarfed the passing line"
    );
    assert_eq!(
        m.controller(b).mode_of(&line),
        Some(multicube::LineMode::Shared)
    );
    m.check_coherence().unwrap();
}

// ---------------------------------------------------------------------
// Broadcast sharing-filter ablation
// ---------------------------------------------------------------------

#[test]
fn broadcast_filter_skips_fanout_without_sharers() {
    let line = LineAddr::new(9);
    let run = |filter: bool| {
        let config = MachineConfig::grid(4)
            .unwrap()
            .with_broadcast_filter(filter);
        let mut m = Machine::new(config, 7).unwrap();
        let writer = NodeId::new(6);
        m.submit(writer, Request::write(line)).unwrap();
        m.advance().unwrap();
        m.run_to_quiescence();
        m.check_coherence().unwrap();
        m.metrics().write_unmodified.row_ops.mean()
    };
    // No shared copies anywhere: the filter drops the n row purges.
    assert_eq!(run(false), 5.0); // n + 1
    assert!(run(true) <= 2.0); // request + data reply only
}

#[test]
fn broadcast_filter_still_invalidates_real_sharers() {
    let line = LineAddr::new(9);
    let config = MachineConfig::grid(4).unwrap().with_broadcast_filter(true);
    let mut m = Machine::new(config, 7).unwrap();
    for reader in [0u32, 10, 15] {
        m.submit(NodeId::new(reader), Request::read(line)).unwrap();
        m.advance().unwrap();
        m.run_to_quiescence();
    }
    let writer = NodeId::new(6);
    m.submit(writer, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    for reader in [0u32, 10, 15] {
        assert_eq!(m.controller(NodeId::new(reader)).mode_of(&line), None);
    }
    m.check_coherence().unwrap();
}

// ---------------------------------------------------------------------
// Two-level cache hierarchy (§2)
// ---------------------------------------------------------------------

#[test]
fn l1_read_hits_are_fast_and_bus_free() {
    use multicube_mem::WordAddr;
    let mut m = machine(4);
    let node = NodeId::new(0);
    let word = WordAddr::new(160); // line 10 with 16-word blocks

    // First access: full miss through the bus.
    m.submit_word(node, word, false).unwrap();
    let first = m.advance().unwrap();
    m.run_to_quiescence();
    assert!(first.latency.as_nanos() > 1000);

    // Second access to the same line: L1 hit, ~processor latency.
    m.submit_word(node, word, false).unwrap();
    let second = m.advance().unwrap();
    assert_eq!(second.latency.as_nanos(), 10);
    assert_eq!(m.metrics().l1_hits.get(), 1);
    let (row, col) = m.bus_op_totals();
    assert_eq!(
        m.metrics().local_hits.count,
        1,
        "L1 hit recorded as a local completion"
    );
    // No new bus traffic for the L1 hit.
    m.run_to_quiescence();
    let (row2, col2) = m.bus_op_totals();
    assert_eq!((row, col), (row2, col2));
    m.check_coherence().unwrap();
}

#[test]
fn writes_are_written_through_never_served_by_l1() {
    use multicube_mem::WordAddr;
    let mut m = machine(4);
    let node = NodeId::new(0);
    let word = WordAddr::new(160);

    m.submit_word(node, word, false).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();

    // A write to the L1-resident line still goes through the snooping
    // cache (an upgrade transaction here, since the line is shared).
    m.submit_word(node, word, true).unwrap();
    let w = m.advance().unwrap();
    assert!(
        w.latency.as_nanos() > 100,
        "write-through cannot be an L1 hit"
    );
    m.run_to_quiescence();
    m.check_coherence().unwrap();
}

#[test]
fn invalidation_purges_l1_too() {
    use multicube_mem::WordAddr;
    let mut m = machine(4);
    let reader = NodeId::new(0);
    let writer = NodeId::new(15);
    let word = WordAddr::new(160);
    let line = m.line_geometry().line_of(word);

    m.submit_word(reader, word, false).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    assert!(m.controller(reader).l1_contains(&line));

    // Remote write purges both cache levels at the reader.
    m.submit(writer, Request::write(line)).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    assert!(!m.controller(reader).l1_contains(&line));
    assert_eq!(m.controller(reader).mode_of(&line), None);

    // The reader's next access misses in L1 and fetches the new data.
    m.submit_word(reader, word, false).unwrap();
    let again = m.advance().unwrap();
    assert!(again.latency.as_nanos() > 1000);
    m.run_to_quiescence();
    assert_eq!(
        m.controller(reader).data_of(&line),
        Some(m.committed_version(line))
    );
    m.check_coherence().unwrap();
}

#[test]
fn disabling_l1_routes_everything_to_the_snooping_cache() {
    use multicube_mem::WordAddr;
    let config = MachineConfig::grid(4).unwrap().with_processor_cache(None);
    let mut m = Machine::new(config, 9).unwrap();
    let node = NodeId::new(0);
    let word = WordAddr::new(160);
    m.submit_word(node, word, false).unwrap();
    m.advance().unwrap();
    m.run_to_quiescence();
    m.submit_word(node, word, false).unwrap();
    let second = m.advance().unwrap();
    // Snooping-cache hit latency, not L1 latency.
    assert_eq!(second.latency.as_nanos(), 750);
    assert_eq!(m.metrics().l1_hits.get(), 0);
}
