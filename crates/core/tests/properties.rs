//! Property-based tests: arbitrary request sequences over arbitrary
//! machine configurations must always complete, stay coherent and remain
//! deterministic.

use multicube::{FaultPlan, LatencyMode, Machine, MachineConfig, Request, RequestKind};
use multicube_mem::{CacheGeometry, LineAddr};
use multicube_topology::NodeId;
use proptest::prelude::*;

/// A compact encoding of one request.
#[derive(Debug, Clone, Copy)]
struct Step {
    node: u8,
    kind: u8,
    line: u8,
}

fn steps(max_len: usize) -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (any::<u8>(), 0u8..5, any::<u8>()).prop_map(|(node, kind, line)| Step { node, kind, line }),
        1..max_len,
    )
}

fn kind_of(code: u8) -> RequestKind {
    match code {
        0 | 1 => RequestKind::Read,
        2 => RequestKind::Write,
        3 => RequestKind::Allocate,
        4 => RequestKind::TestAndSet,
        _ => RequestKind::Writeback,
    }
}

/// Replays a step sequence serially (submit, drain) on a machine.
fn replay(machine: &mut Machine, steps: &[Step], lines: u64) -> (u64, u64) {
    let nodes = machine.side() * machine.side();
    let mut completions = 0u64;
    let mut successes = 0u64;
    for s in steps {
        let node = NodeId::new(s.node as u32 % nodes);
        let line = LineAddr::new(s.line as u64 % lines);
        let kind = kind_of(s.kind);
        machine
            .submit(node, Request::new(kind, line))
            .expect("serial submission to an idle node");
        for c in machine.run_to_quiescence() {
            completions += 1;
            if c.success {
                successes += 1;
            }
        }
    }
    (completions, successes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serial random requests on the default machine: everything
    /// completes, the machine is coherent, progress is made.
    #[test]
    fn serial_requests_stay_coherent(ops in steps(60)) {
        let mut m = Machine::new(MachineConfig::grid(3).unwrap(), 11).unwrap();
        let (completions, _) = replay(&mut m, &ops, 24);
        prop_assert_eq!(completions as usize, ops.len());
        m.check_coherence().unwrap();
    }

    /// The same holds with a tiny cache (constant eviction pressure and
    /// victim write-backs) and a tiny modified line table (overflow
    /// write-backs) — the two capacity-pressure paths of the protocol.
    #[test]
    fn capacity_pressure_stays_coherent(ops in steps(50)) {
        let config = MachineConfig::grid(3)
            .unwrap()
            .with_snoop_cache(CacheGeometry::new(2, 2))
            .with_mlt_capacity(2);
        let mut m = Machine::new(config, 13).unwrap();
        let (completions, _) = replay(&mut m, &ops, 24);
        prop_assert_eq!(completions as usize, ops.len());
        m.check_coherence().unwrap();
    }

    /// Concurrent random requests (all nodes in flight at once, repeated
    /// rounds) exercise every race path; the machine must drain, count
    /// every transaction, and stay coherent.
    #[test]
    fn concurrent_rounds_stay_coherent(
        rounds in prop::collection::vec(
            prop::collection::vec((0u8..5, any::<u8>()), 9..=9),
            1..6,
        )
    ) {
        let mut m = Machine::new(MachineConfig::grid(3).unwrap(), 17).unwrap();
        let mut expected = 0usize;
        let mut seen = 0usize;
        for round in &rounds {
            for (i, &(kind, line)) in round.iter().enumerate() {
                let node = NodeId::new(i as u32);
                let line = LineAddr::new(line as u64 % 6); // heavy collisions
                m.submit(node, Request::new(kind_of(kind), line)).unwrap();
                expected += 1;
            }
            seen += m.run_to_quiescence().len();
        }
        prop_assert_eq!(seen, expected);
        m.check_coherence().unwrap();
    }

    /// Under every latency mode and with snarfing enabled, concurrent
    /// traffic remains coherent.
    #[test]
    fn latency_modes_and_snarfing_stay_coherent(
        ops in steps(40),
        mode in 0u8..4,
        snarf in any::<bool>(),
    ) {
        let mode = match mode {
            0 => LatencyMode::StoreAndForward,
            1 => LatencyMode::RequestedWordFirst,
            2 => LatencyMode::Pieces { words: 4 },
            _ => LatencyMode::Pieces { words: 16 },
        };
        let config = MachineConfig::grid(3)
            .unwrap()
            .with_latency_mode(mode)
            .with_snarfing(snarf);
        let mut m = Machine::new(config, 19).unwrap();
        // Concurrent submission in batches of up to 9.
        let mut expected = 0usize;
        let mut seen = 0usize;
        for chunk in ops.chunks(9) {
            for (i, s) in chunk.iter().enumerate() {
                let node = NodeId::new(i as u32);
                let line = LineAddr::new(s.line as u64 % 12);
                m.submit(node, Request::new(kind_of(s.kind), line)).unwrap();
                expected += 1;
            }
            seen += m.run_to_quiescence().len();
        }
        prop_assert_eq!(seen, expected);
        m.check_coherence().unwrap();
    }

    /// Failure injection: dropped modified signals never lose a
    /// transaction, only add retries.
    #[test]
    fn signal_drops_never_lose_transactions(ops in steps(40), drop_pct in 0u8..90) {
        let config = MachineConfig::grid(3)
            .unwrap()
            .with_fault_plan(FaultPlan::default().with_signal_drop(drop_pct as f64 / 100.0));
        let mut m = Machine::new(config, 23).unwrap();
        let (completions, _) = replay(&mut m, &ops, 12);
        prop_assert_eq!(completions as usize, ops.len());
        m.check_coherence().unwrap();
    }

    /// Identical seeds and inputs give bit-identical outcomes; the seed
    /// matters only when randomness is actually consumed.
    #[test]
    fn replay_is_deterministic(ops in steps(30)) {
        let run = |seed: u64| {
            let mut m = Machine::new(MachineConfig::grid(3).unwrap(), seed).unwrap();
            let out = replay(&mut m, &ops, 16);
            let (row, col) = m.bus_op_totals();
            (out, row, col, m.now())
        };
        prop_assert_eq!(run(1), run(1));
    }

    /// The broadcast sharing-filter ablation never breaks coherence.
    #[test]
    fn broadcast_filter_stays_coherent(ops in steps(40)) {
        let config = MachineConfig::grid(3).unwrap().with_broadcast_filter(true);
        let mut m = Machine::new(config, 29).unwrap();
        let mut expected = 0usize;
        let mut seen = 0usize;
        for chunk in ops.chunks(9) {
            for (i, s) in chunk.iter().enumerate() {
                let node = NodeId::new(i as u32);
                let line = LineAddr::new(s.line as u64 % 8);
                m.submit(node, Request::new(kind_of(s.kind), line)).unwrap();
                expected += 1;
            }
            seen += m.run_to_quiescence().len();
        }
        prop_assert_eq!(seen, expected);
        m.check_coherence().unwrap();
    }

    /// A test-and-set that succeeds is exclusive: replay any sequence of
    /// TAS requests; at most one success per lock epoch (until the owner
    /// clears the word).
    #[test]
    fn tas_grants_are_exclusive(nodes in prop::collection::vec(0u8..9, 1..30)) {
        let mut m = Machine::new(MachineConfig::grid(3).unwrap(), 31).unwrap();
        let line = LineAddr::new(3);
        let mut holder: Option<NodeId> = None;
        for &raw in &nodes {
            let node = NodeId::new(raw as u32 % 9);
            m.submit(node, Request::new(RequestKind::TestAndSet, line)).unwrap();
            for c in m.run_to_quiescence() {
                if c.kind == RequestKind::TestAndSet && c.success {
                    prop_assert!(holder.is_none(), "second grant while held");
                    holder = Some(c.node);
                }
            }
            // Occasionally release.
            if raw % 3 == 0 {
                if let Some(h) = holder {
                    if m.write_sync_word(h, line, 0) {
                        holder = None;
                    }
                }
            }
        }
        m.check_coherence().unwrap();
    }
}
