//! Machine-facing contracts of the event kernel.
//!
//! These pin the behaviors the timing-wheel rewrite must preserve at the
//! machine boundary: the causality assert behind [`Machine::submit_at`],
//! and [`Machine::run_to_quiescence`] reporting completions in delivery
//! order even when its `completions` buffer was partially drained by
//! earlier `advance` calls.

use multicube::{Machine, MachineConfig, Request};
use multicube_mem::LineAddr;
use multicube_sim::SimTime;
use multicube_topology::NodeId;

fn machine() -> Machine {
    Machine::new(MachineConfig::grid(2).unwrap(), 3).unwrap()
}

/// `submit_at` with a past instant trips the kernel's causality assert —
/// the pinned message is part of the kernel's contract.
#[test]
#[should_panic(expected = "cannot schedule event in the past")]
fn submit_at_past_instant_panics() {
    let mut m = machine();
    // Advance the clock off zero first.
    m.submit(NodeId::new(0), Request::write(LineAddr::new(1)))
        .unwrap();
    m.advance().expect("write completes");
    assert!(m.now() > SimTime::ZERO);
    let past = SimTime::from_nanos(m.now().as_nanos() - 1);
    m.submit_at(NodeId::new(0), Request::read(LineAddr::new(1)), past);
}

/// `submit_at` at exactly `now` is allowed (the boundary of the assert).
#[test]
fn submit_at_present_instant_is_allowed() {
    let mut m = machine();
    m.submit(NodeId::new(0), Request::write(LineAddr::new(1)))
        .unwrap();
    m.advance().expect("write completes");
    m.submit_at(NodeId::new(1), Request::read(LineAddr::new(1)), m.now());
    let done = m.run_to_quiescence();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].node, NodeId::new(1));
}

/// After `advance` has drained some of the internal completions buffer,
/// `run_to_quiescence` returns the *remaining* completions in delivery
/// order: buffered ones first, then new ones as events fire, with
/// non-decreasing completion instants.
#[test]
fn run_to_quiescence_orders_completions_after_partial_drain() {
    let mut m = machine();
    // Queue staggered issues on all four nodes; later instants are spread
    // so completions arrive in a deterministic delivery order.
    for i in 0..4u32 {
        m.submit_at(
            NodeId::new(i),
            Request::write(LineAddr::new(u64::from(i))),
            SimTime::from_nanos(u64::from(i) * 10),
        );
    }
    // Drain exactly one completion through `advance`...
    let first = m.advance().expect("first completion");
    // ...then collect the rest in one sweep.
    let rest = m.run_to_quiescence();
    assert_eq!(rest.len(), 3);
    let mut all = vec![first];
    all.extend(rest.iter().copied());
    let mut last = SimTime::ZERO;
    for c in &all {
        assert!(c.at >= last, "completions out of delivery order");
        last = c.at;
    }
    let nodes: Vec<u32> = all.iter().map(|c| c.node.index()).collect();
    assert_eq!(nodes, [0, 1, 2, 3]);
    m.check_coherence().unwrap();
}
