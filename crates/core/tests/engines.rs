//! Engine conformance: the pluggable `ProtocolEngine` seam must give
//! every engine the same external contract (requests complete, invariants
//! hold, traces are deterministic) while each engine follows its own
//! per-line state machine. Trace-driven chain tests pin the bus-op
//! sequences of the arena engines the way `trace_protocol.rs` pins the
//! Appendix-A chains.

use multicube::trace::{TracePoint, TraceSink};
use multicube::{
    EngineKind, LineMode, Machine, MachineConfig, OpKind, Request, SyntheticSpec, Timing, Watchdog,
    WatchdogAction,
};
use multicube_mem::LineAddr;

fn grid4(engine: EngineKind) -> Machine {
    let config = MachineConfig::grid(4).unwrap().with_engine(engine);
    Machine::new(config, 31).unwrap()
}

/// Completed bus ops touching `line`, in completion order.
fn completed_ops(m: &Machine, line: LineAddr) -> Vec<OpKind> {
    m.trace_events()
        .into_iter()
        .filter(|e| e.point == TracePoint::OpComplete && e.line == line)
        .map(|e| e.kind.expect("operation events carry a kind"))
        .collect()
}

fn quiesce(m: &mut Machine) {
    m.advance().unwrap();
    m.run_to_quiescence();
}

// ---------------------------------------------------------------------
// Cross-engine contract
// ---------------------------------------------------------------------

/// Every engine completes the full synthetic workload and passes its own
/// quiescent invariant check.
#[test]
fn all_engines_run_the_synthetic_workload_coherently() {
    for engine in EngineKind::all() {
        let mut m = grid4(engine);
        let report = m.run_synthetic(&SyntheticSpec::default(), 25);
        assert_eq!(
            report.transactions_completed,
            25 * 16,
            "{engine}: all transactions complete"
        );
        assert!(
            report.efficiency > 0.0 && report.efficiency <= 1.0,
            "{engine}: efficiency in range"
        );
        m.check_coherence()
            .unwrap_or_else(|v| panic!("{engine}: coherence violated: {v}"));
    }
}

/// The single-writer invariant holds for every engine under write
/// contention on one line.
#[test]
fn single_writer_holds_under_contention_for_every_engine() {
    let line = LineAddr::new(7);
    for engine in EngineKind::all() {
        let mut m = grid4(engine);
        for i in 0..24u32 {
            let node = m.config().topology().node(i % 4, (i / 4) % 4);
            m.submit(node, Request::write(line)).unwrap();
            quiesce(&mut m);
            let writers = (0..16u32)
                .map(|n| m.config().topology().node(n / 4, n % 4))
                .filter(|&n| m.controller(n).mode_of(&line) == Some(LineMode::Modified))
                .count();
            assert!(writers <= 1, "{engine}: {writers} simultaneous writers");
            m.check_coherence()
                .unwrap_or_else(|v| panic!("{engine}: coherence violated: {v}"));
        }
    }
}

/// Seeded runs of the rival engines are reproducible: identical seeds
/// give identical reports, different seeds diverge.
#[test]
fn arena_engines_are_deterministic() {
    for engine in [EngineKind::Mesi, EngineKind::Dragon] {
        let run = |seed: u64| {
            let config = MachineConfig::grid(4).unwrap().with_engine(engine);
            let mut m = Machine::new(config, seed).unwrap();
            let r = m.run_synthetic(&SyntheticSpec::default(), 30);
            (
                r.transactions_completed,
                r.elapsed,
                r.row_bus_ops + r.col_bus_ops,
                r.mean_latency_ns.to_bits(),
            )
        };
        assert_eq!(run(9), run(9), "{engine}: same seed must reproduce");
        assert_ne!(run(9), run(10), "{engine}: different seeds must diverge");
    }
}

// ---------------------------------------------------------------------
// Watchdog coverage across engines
// ---------------------------------------------------------------------

/// Timing that makes the local-access race deterministic: the snooping
/// cache is glacial (a local hit stays in flight for 50 us) while buses
/// and memory are fast, so a rival's bus transaction always snoops the
/// line away mid-access and forces a fault-free retry.
fn race_timing() -> Timing {
    Timing {
        word_ns: 5,
        addr_op_ns: 5,
        snoop_latency_ns: 50_000,
        memory_latency_ns: 20,
    }
}

/// Drives one fault-free contention race that must end in a retry under
/// `engine`: node `a` starts a local cache access, node `b`'s bus
/// transaction snoops the line away mid-access (Multicube and MESI purge
/// it, Dragon downgrades the exclusive-clean copy), and `a`'s local
/// completion restarts over the bus — recording the retry the watchdog
/// judges. Returns the machine and the completion count.
fn run_contended(engine: EngineKind, watchdog: Watchdog) -> (Machine, usize) {
    let config = MachineConfig::grid(4)
        .unwrap()
        .with_engine(engine)
        .with_timing(race_timing())
        .with_watchdog(watchdog);
    let mut m = Machine::new(config, 11).unwrap();
    let line = LineAddr::new(3);
    let a = m.config().topology().node(0, 0);
    let b = m.config().topology().node(1, 1);

    // Setup: `a` alone holds the line — Shared under Multicube (reads
    // install shared copies), exclusive-clean under the arena engines.
    m.submit(a, Request::read(line)).unwrap();
    m.run_to_quiescence();

    // The race: `a`'s access is a local hit that waits out the slow
    // cache; `b`'s bus transaction lands long before it completes.
    let (a_req, b_req) = match engine {
        // `b`'s write invalidates `a`'s shared copy out from under the
        // local read.
        EngineKind::Multicube => (Request::read(line), Request::write(line)),
        // `b`'s read downgrades `a`'s E copy out from under the local
        // (would-be silent) write upgrade.
        EngineKind::Mesi | EngineKind::Dragon => (Request::write(line), Request::read(line)),
    };
    m.submit(a, a_req).unwrap();
    m.submit(b, b_req).unwrap();
    let completions = m.run_to_quiescence().len();
    (m, completions)
}

/// Escalation under every engine: the contention retry trips a 1 ns age
/// budget, escalation completes both transactions, and the quiescent
/// machine is coherent with no leaked escalations.
#[test]
fn watchdog_escalate_trips_and_recovers_for_every_engine() {
    for engine in EngineKind::all() {
        let wd = Watchdog::default()
            .with_age_budget_ns(1)
            .with_action(WatchdogAction::Escalate);
        let (m, completions) = run_contended(engine, wd);
        assert_eq!(completions, 2, "{engine}: both contenders complete");
        assert!(
            m.metrics().watchdog_trips.get() > 0,
            "{engine}: the contention retry must trip the age watchdog"
        );
        m.check_coherence()
            .unwrap_or_else(|v| panic!("{engine}: coherence violated after escalation: {v}"));
    }
}

/// An ample watchdog stays silent on the very same race, for every
/// engine: one genuine retry is far below any sane budget.
#[test]
fn watchdog_stays_silent_on_ordinary_contention_for_every_engine() {
    for engine in EngineKind::all() {
        let (m, completions) = run_contended(engine, Watchdog::default());
        assert_eq!(completions, 2, "{engine}: both contenders complete");
        assert_eq!(
            m.metrics().watchdog_trips.get(),
            0,
            "{engine}: the default budget must not trip on one retry"
        );
        m.check_coherence().unwrap();
    }
}

#[test]
#[should_panic(expected = "watchdog")]
fn multicube_fail_fast_watchdog_panics_on_contention() {
    let wd = Watchdog::default()
        .with_age_budget_ns(1)
        .with_action(WatchdogAction::FailFast);
    run_contended(EngineKind::Multicube, wd);
}

#[test]
#[should_panic(expected = "watchdog")]
fn mesi_fail_fast_watchdog_panics_on_contention() {
    let wd = Watchdog::default()
        .with_age_budget_ns(1)
        .with_action(WatchdogAction::FailFast);
    run_contended(EngineKind::Mesi, wd);
}

#[test]
#[should_panic(expected = "watchdog")]
fn dragon_fail_fast_watchdog_panics_on_contention() {
    let wd = Watchdog::default()
        .with_age_budget_ns(1)
        .with_action(WatchdogAction::FailFast);
    run_contended(EngineKind::Dragon, wd);
}

/// Satellite pin: an active fault plan on an arena engine is a
/// configuration error surfaced at machine construction, not a silent
/// no-op (the arena engines have no fault handling).
#[test]
fn arena_engines_refuse_active_fault_plans_at_construction() {
    use multicube::{FaultConfigError, FaultPlan, MachineConfigError};
    for engine in [EngineKind::Mesi, EngineKind::Dragon] {
        let config = MachineConfig::grid(4)
            .unwrap()
            .with_engine(engine)
            .with_fault_plan(FaultPlan::default().with_signal_drop(0.2));
        let err = Machine::new(config, 1).expect_err("construction must fail");
        assert_eq!(
            err,
            MachineConfigError::Fault(FaultConfigError::UnsupportedByEngine {
                engine: engine.name()
            }),
            "{engine}: active fault plan must be rejected"
        );
    }
}

// ---------------------------------------------------------------------
// MESI chains
// ---------------------------------------------------------------------

/// A read miss to a remotely-modified line is a single atomic bus
/// transaction: the owner supplies, downgrades to S, memory snarfs.
#[test]
fn mesi_remote_modified_read_is_one_bus_transaction() {
    let mut m = grid4(EngineKind::Mesi);
    let line = LineAddr::new(5);
    let owner = m.config().topology().node(3, 3);
    let reader = m.config().topology().node(0, 2);

    m.submit(owner, Request::write(line)).unwrap();
    quiesce(&mut m);
    assert_eq!(m.controller(owner).mode_of(&line), Some(LineMode::Modified));

    m.set_trace_sink(TraceSink::ring(1024));
    m.submit(reader, Request::read(line)).unwrap();
    quiesce(&mut m);

    assert_eq!(completed_ops(&m, line), vec![OpKind::BusRead]);
    assert_eq!(m.controller(owner).mode_of(&line), Some(LineMode::Shared));
    assert_eq!(m.controller(reader).mode_of(&line), Some(LineMode::Shared));
    m.check_coherence().expect("coherent");
}

/// A write hit on a shared copy upgrades in place with an address-only
/// `BusUpgrade`, invalidating the other sharers; a subsequent read by an
/// invalidated node misses and sees the new data (no stale read after
/// invalidate).
#[test]
fn mesi_write_hit_shared_upgrades_and_invalidates() {
    let mut m = grid4(EngineKind::Mesi);
    let line = LineAddr::new(9);
    let a = m.config().topology().node(0, 0);
    let b = m.config().topology().node(1, 1);

    // a fetches exclusive-clean, b's read makes both shared.
    m.submit(a, Request::read(line)).unwrap();
    quiesce(&mut m);
    assert_eq!(m.controller(a).mode_of(&line), Some(LineMode::Reserved));
    m.submit(b, Request::read(line)).unwrap();
    quiesce(&mut m);
    assert_eq!(m.controller(a).mode_of(&line), Some(LineMode::Shared));

    let invalidations_before = m.metrics().invalidations.get();
    m.set_trace_sink(TraceSink::ring(1024));
    m.submit(a, Request::write(line)).unwrap();
    quiesce(&mut m);

    assert_eq!(completed_ops(&m, line), vec![OpKind::BusUpgrade]);
    assert_eq!(m.controller(a).mode_of(&line), Some(LineMode::Modified));
    assert_eq!(m.controller(b).mode_of(&line), None, "b was invalidated");
    assert_eq!(m.metrics().invalidations.get(), invalidations_before + 1);

    // b reads again: a miss that must observe a's write.
    m.submit(b, Request::read(line)).unwrap();
    quiesce(&mut m);
    assert_eq!(
        m.controller(b).data_of(&line),
        m.controller(a).data_of(&line),
        "no stale read after invalidate"
    );
    m.check_coherence().expect("coherent");
}

/// A write to an exclusive-clean (E) copy upgrades to M silently — the
/// MESI advantage: zero bus traffic.
#[test]
fn mesi_exclusive_clean_write_is_silent() {
    let mut m = grid4(EngineKind::Mesi);
    let line = LineAddr::new(11);
    let a = m.config().topology().node(2, 0);

    m.submit(a, Request::read(line)).unwrap();
    quiesce(&mut m);
    assert_eq!(m.controller(a).mode_of(&line), Some(LineMode::Reserved));

    m.set_trace_sink(TraceSink::ring(1024));
    m.submit(a, Request::write(line)).unwrap();
    quiesce(&mut m);

    assert!(
        completed_ops(&m, line).is_empty(),
        "E→M must use no bus traffic"
    );
    assert_eq!(m.controller(a).mode_of(&line), Some(LineMode::Modified));
    m.check_coherence().expect("coherent");
}

// ---------------------------------------------------------------------
// Dragon chains
// ---------------------------------------------------------------------

/// A write hit on a shared copy broadcasts one `BusUpdate`; the other
/// copy is refreshed in place, never invalidated, and a subsequent local
/// read sees the new data (no stale read after update).
#[test]
fn dragon_write_to_shared_broadcasts_an_update() {
    let mut m = grid4(EngineKind::Dragon);
    let line = LineAddr::new(13);
    let a = m.config().topology().node(0, 1);
    let b = m.config().topology().node(2, 2);

    m.submit(a, Request::read(line)).unwrap();
    quiesce(&mut m);
    m.submit(b, Request::read(line)).unwrap();
    quiesce(&mut m);
    assert_eq!(m.controller(a).mode_of(&line), Some(LineMode::Shared));

    let updates_before = m.metrics().updates.get();
    m.set_trace_sink(TraceSink::ring(1024));
    m.submit(b, Request::write(line)).unwrap();
    quiesce(&mut m);

    assert_eq!(completed_ops(&m, line), vec![OpKind::BusUpdate]);
    assert_eq!(
        m.controller(a).mode_of(&line),
        Some(LineMode::Shared),
        "Dragon never invalidates"
    );
    assert_eq!(m.metrics().updates.get(), updates_before + 1);
    assert_eq!(
        m.controller(a).data_of(&line),
        m.controller(b).data_of(&line),
        "no stale read after update"
    );
    m.check_coherence().expect("coherent");
}

/// A write miss while other copies exist is the classic two-op Dragon
/// sequence: `BusRead` to fetch, then `BusUpdate` to broadcast the write.
#[test]
fn dragon_write_miss_with_sharers_chains_read_then_update() {
    let mut m = grid4(EngineKind::Dragon);
    let line = LineAddr::new(17);
    let a = m.config().topology().node(0, 0);
    let b = m.config().topology().node(1, 2);
    let writer = m.config().topology().node(3, 1);

    m.submit(a, Request::read(line)).unwrap();
    quiesce(&mut m);
    m.submit(b, Request::read(line)).unwrap();
    quiesce(&mut m);

    let updates_before = m.metrics().updates.get();
    m.set_trace_sink(TraceSink::ring(1024));
    m.submit(writer, Request::write(line)).unwrap();
    quiesce(&mut m);

    assert_eq!(
        completed_ops(&m, line),
        vec![OpKind::BusRead, OpKind::BusUpdate]
    );
    // Both prior sharers were refreshed in place.
    assert_eq!(m.metrics().updates.get(), updates_before + 2);
    for n in [a, b] {
        assert_eq!(
            m.controller(n).data_of(&line),
            m.controller(writer).data_of(&line),
            "update refreshed every copy"
        );
    }
    m.check_coherence().expect("coherent");
}

/// A read of a remotely-modified line leaves the dirty data in the
/// caches: the old owner becomes the shared-modified supplier and memory
/// stays stale until a write-back.
#[test]
fn dragon_read_of_modified_line_creates_a_shared_modified_supplier() {
    let mut m = grid4(EngineKind::Dragon);
    let line = LineAddr::new(21);
    let owner = m.config().topology().node(2, 3);
    let reader = m.config().topology().node(1, 0);

    m.submit(owner, Request::write(line)).unwrap();
    quiesce(&mut m);
    assert_eq!(m.controller(owner).mode_of(&line), Some(LineMode::Modified));

    m.set_trace_sink(TraceSink::ring(1024));
    m.submit(reader, Request::read(line)).unwrap();
    quiesce(&mut m);

    assert_eq!(completed_ops(&m, line), vec![OpKind::BusRead]);
    assert_eq!(m.controller(owner).mode_of(&line), Some(LineMode::Shared));
    assert_eq!(m.controller(reader).mode_of(&line), Some(LineMode::Shared));
    m.check_coherence().expect("coherent");

    // An explicit write-back by the Sm holder cleans the line for memory.
    m.submit(owner, Request::writeback(line)).unwrap();
    quiesce(&mut m);
    m.check_coherence().expect("coherent after writeback");
}
