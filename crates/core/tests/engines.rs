//! Engine conformance: the pluggable `ProtocolEngine` seam must give
//! every engine the same external contract (requests complete, invariants
//! hold, traces are deterministic) while each engine follows its own
//! per-line state machine. Trace-driven chain tests pin the bus-op
//! sequences of the arena engines the way `trace_protocol.rs` pins the
//! Appendix-A chains.

use multicube::trace::{TracePoint, TraceSink};
use multicube::{EngineKind, LineMode, Machine, MachineConfig, OpKind, Request, SyntheticSpec};
use multicube_mem::LineAddr;

fn grid4(engine: EngineKind) -> Machine {
    let config = MachineConfig::grid(4).unwrap().with_engine(engine);
    Machine::new(config, 31).unwrap()
}

/// Completed bus ops touching `line`, in completion order.
fn completed_ops(m: &Machine, line: LineAddr) -> Vec<OpKind> {
    m.trace_events()
        .into_iter()
        .filter(|e| e.point == TracePoint::OpComplete && e.line == line)
        .map(|e| e.kind.expect("operation events carry a kind"))
        .collect()
}

fn quiesce(m: &mut Machine) {
    m.advance().unwrap();
    m.run_to_quiescence();
}

// ---------------------------------------------------------------------
// Cross-engine contract
// ---------------------------------------------------------------------

/// Every engine completes the full synthetic workload and passes its own
/// quiescent invariant check.
#[test]
fn all_engines_run_the_synthetic_workload_coherently() {
    for engine in EngineKind::all() {
        let mut m = grid4(engine);
        let report = m.run_synthetic(&SyntheticSpec::default(), 25);
        assert_eq!(
            report.transactions_completed,
            25 * 16,
            "{engine}: all transactions complete"
        );
        assert!(
            report.efficiency > 0.0 && report.efficiency <= 1.0,
            "{engine}: efficiency in range"
        );
        m.check_coherence()
            .unwrap_or_else(|v| panic!("{engine}: coherence violated: {v}"));
    }
}

/// The single-writer invariant holds for every engine under write
/// contention on one line.
#[test]
fn single_writer_holds_under_contention_for_every_engine() {
    let line = LineAddr::new(7);
    for engine in EngineKind::all() {
        let mut m = grid4(engine);
        for i in 0..24u32 {
            let node = m.config().topology().node(i % 4, (i / 4) % 4);
            m.submit(node, Request::write(line)).unwrap();
            quiesce(&mut m);
            let writers = (0..16u32)
                .map(|n| m.config().topology().node(n / 4, n % 4))
                .filter(|&n| m.controller(n).mode_of(&line) == Some(LineMode::Modified))
                .count();
            assert!(writers <= 1, "{engine}: {writers} simultaneous writers");
            m.check_coherence()
                .unwrap_or_else(|v| panic!("{engine}: coherence violated: {v}"));
        }
    }
}

/// Seeded runs of the rival engines are reproducible: identical seeds
/// give identical reports, different seeds diverge.
#[test]
fn arena_engines_are_deterministic() {
    for engine in [EngineKind::Mesi, EngineKind::Dragon] {
        let run = |seed: u64| {
            let config = MachineConfig::grid(4).unwrap().with_engine(engine);
            let mut m = Machine::new(config, seed).unwrap();
            let r = m.run_synthetic(&SyntheticSpec::default(), 30);
            (
                r.transactions_completed,
                r.elapsed,
                r.row_bus_ops + r.col_bus_ops,
                r.mean_latency_ns.to_bits(),
            )
        };
        assert_eq!(run(9), run(9), "{engine}: same seed must reproduce");
        assert_ne!(run(9), run(10), "{engine}: different seeds must diverge");
    }
}

// ---------------------------------------------------------------------
// MESI chains
// ---------------------------------------------------------------------

/// A read miss to a remotely-modified line is a single atomic bus
/// transaction: the owner supplies, downgrades to S, memory snarfs.
#[test]
fn mesi_remote_modified_read_is_one_bus_transaction() {
    let mut m = grid4(EngineKind::Mesi);
    let line = LineAddr::new(5);
    let owner = m.config().topology().node(3, 3);
    let reader = m.config().topology().node(0, 2);

    m.submit(owner, Request::write(line)).unwrap();
    quiesce(&mut m);
    assert_eq!(m.controller(owner).mode_of(&line), Some(LineMode::Modified));

    m.set_trace_sink(TraceSink::ring(1024));
    m.submit(reader, Request::read(line)).unwrap();
    quiesce(&mut m);

    assert_eq!(completed_ops(&m, line), vec![OpKind::BusRead]);
    assert_eq!(m.controller(owner).mode_of(&line), Some(LineMode::Shared));
    assert_eq!(m.controller(reader).mode_of(&line), Some(LineMode::Shared));
    m.check_coherence().expect("coherent");
}

/// A write hit on a shared copy upgrades in place with an address-only
/// `BusUpgrade`, invalidating the other sharers; a subsequent read by an
/// invalidated node misses and sees the new data (no stale read after
/// invalidate).
#[test]
fn mesi_write_hit_shared_upgrades_and_invalidates() {
    let mut m = grid4(EngineKind::Mesi);
    let line = LineAddr::new(9);
    let a = m.config().topology().node(0, 0);
    let b = m.config().topology().node(1, 1);

    // a fetches exclusive-clean, b's read makes both shared.
    m.submit(a, Request::read(line)).unwrap();
    quiesce(&mut m);
    assert_eq!(m.controller(a).mode_of(&line), Some(LineMode::Reserved));
    m.submit(b, Request::read(line)).unwrap();
    quiesce(&mut m);
    assert_eq!(m.controller(a).mode_of(&line), Some(LineMode::Shared));

    let invalidations_before = m.metrics().invalidations.get();
    m.set_trace_sink(TraceSink::ring(1024));
    m.submit(a, Request::write(line)).unwrap();
    quiesce(&mut m);

    assert_eq!(completed_ops(&m, line), vec![OpKind::BusUpgrade]);
    assert_eq!(m.controller(a).mode_of(&line), Some(LineMode::Modified));
    assert_eq!(m.controller(b).mode_of(&line), None, "b was invalidated");
    assert_eq!(m.metrics().invalidations.get(), invalidations_before + 1);

    // b reads again: a miss that must observe a's write.
    m.submit(b, Request::read(line)).unwrap();
    quiesce(&mut m);
    assert_eq!(
        m.controller(b).data_of(&line),
        m.controller(a).data_of(&line),
        "no stale read after invalidate"
    );
    m.check_coherence().expect("coherent");
}

/// A write to an exclusive-clean (E) copy upgrades to M silently — the
/// MESI advantage: zero bus traffic.
#[test]
fn mesi_exclusive_clean_write_is_silent() {
    let mut m = grid4(EngineKind::Mesi);
    let line = LineAddr::new(11);
    let a = m.config().topology().node(2, 0);

    m.submit(a, Request::read(line)).unwrap();
    quiesce(&mut m);
    assert_eq!(m.controller(a).mode_of(&line), Some(LineMode::Reserved));

    m.set_trace_sink(TraceSink::ring(1024));
    m.submit(a, Request::write(line)).unwrap();
    quiesce(&mut m);

    assert!(
        completed_ops(&m, line).is_empty(),
        "E→M must use no bus traffic"
    );
    assert_eq!(m.controller(a).mode_of(&line), Some(LineMode::Modified));
    m.check_coherence().expect("coherent");
}

// ---------------------------------------------------------------------
// Dragon chains
// ---------------------------------------------------------------------

/// A write hit on a shared copy broadcasts one `BusUpdate`; the other
/// copy is refreshed in place, never invalidated, and a subsequent local
/// read sees the new data (no stale read after update).
#[test]
fn dragon_write_to_shared_broadcasts_an_update() {
    let mut m = grid4(EngineKind::Dragon);
    let line = LineAddr::new(13);
    let a = m.config().topology().node(0, 1);
    let b = m.config().topology().node(2, 2);

    m.submit(a, Request::read(line)).unwrap();
    quiesce(&mut m);
    m.submit(b, Request::read(line)).unwrap();
    quiesce(&mut m);
    assert_eq!(m.controller(a).mode_of(&line), Some(LineMode::Shared));

    let updates_before = m.metrics().updates.get();
    m.set_trace_sink(TraceSink::ring(1024));
    m.submit(b, Request::write(line)).unwrap();
    quiesce(&mut m);

    assert_eq!(completed_ops(&m, line), vec![OpKind::BusUpdate]);
    assert_eq!(
        m.controller(a).mode_of(&line),
        Some(LineMode::Shared),
        "Dragon never invalidates"
    );
    assert_eq!(m.metrics().updates.get(), updates_before + 1);
    assert_eq!(
        m.controller(a).data_of(&line),
        m.controller(b).data_of(&line),
        "no stale read after update"
    );
    m.check_coherence().expect("coherent");
}

/// A write miss while other copies exist is the classic two-op Dragon
/// sequence: `BusRead` to fetch, then `BusUpdate` to broadcast the write.
#[test]
fn dragon_write_miss_with_sharers_chains_read_then_update() {
    let mut m = grid4(EngineKind::Dragon);
    let line = LineAddr::new(17);
    let a = m.config().topology().node(0, 0);
    let b = m.config().topology().node(1, 2);
    let writer = m.config().topology().node(3, 1);

    m.submit(a, Request::read(line)).unwrap();
    quiesce(&mut m);
    m.submit(b, Request::read(line)).unwrap();
    quiesce(&mut m);

    let updates_before = m.metrics().updates.get();
    m.set_trace_sink(TraceSink::ring(1024));
    m.submit(writer, Request::write(line)).unwrap();
    quiesce(&mut m);

    assert_eq!(
        completed_ops(&m, line),
        vec![OpKind::BusRead, OpKind::BusUpdate]
    );
    // Both prior sharers were refreshed in place.
    assert_eq!(m.metrics().updates.get(), updates_before + 2);
    for n in [a, b] {
        assert_eq!(
            m.controller(n).data_of(&line),
            m.controller(writer).data_of(&line),
            "update refreshed every copy"
        );
    }
    m.check_coherence().expect("coherent");
}

/// A read of a remotely-modified line leaves the dirty data in the
/// caches: the old owner becomes the shared-modified supplier and memory
/// stays stale until a write-back.
#[test]
fn dragon_read_of_modified_line_creates_a_shared_modified_supplier() {
    let mut m = grid4(EngineKind::Dragon);
    let line = LineAddr::new(21);
    let owner = m.config().topology().node(2, 3);
    let reader = m.config().topology().node(1, 0);

    m.submit(owner, Request::write(line)).unwrap();
    quiesce(&mut m);
    assert_eq!(m.controller(owner).mode_of(&line), Some(LineMode::Modified));

    m.set_trace_sink(TraceSink::ring(1024));
    m.submit(reader, Request::read(line)).unwrap();
    quiesce(&mut m);

    assert_eq!(completed_ops(&m, line), vec![OpKind::BusRead]);
    assert_eq!(m.controller(owner).mode_of(&line), Some(LineMode::Shared));
    assert_eq!(m.controller(reader).mode_of(&line), Some(LineMode::Shared));
    m.check_coherence().expect("coherent");

    // An explicit write-back by the Sm holder cleans the line for memory.
    m.submit(owner, Request::writeback(line)).unwrap();
    quiesce(&mut m);
    m.check_coherence().expect("coherent after writeback");
}
