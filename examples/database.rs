//! High-transaction database workload — the paper's first motivating
//! application domain ("high-transaction database systems", §1).
//!
//! Runs the OLTP generator (hot shared index probes, private tuple
//! updates, ALLOCATE log appends) on grids of increasing size and shows
//! that throughput keeps scaling because index reads hit in the large
//! snooping caches and log appends use the cheap ALLOCATE acknowledge.
//!
//! ```text
//! cargo run --release --example database
//! ```

use multicube_suite::machine::{Machine, MachineConfig};
use multicube_suite::workload::{Oltp, WorkloadRunner};

fn main() {
    println!(
        "OLTP on the Wisconsin Multicube (requests: 2x index read, 1x tuple update, 1x log append)"
    );
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>14} {:>12}",
        "grid", "procs", "efficiency", "ops/request", "mean lat (ns)", "allocates"
    );
    for side in [2u32, 4, 8] {
        let config = MachineConfig::grid(side).expect("valid grid");
        let mut machine = Machine::new(config, 1234).expect("valid config");
        let mut oltp = Oltp::new(64);
        let report = WorkloadRunner::new(120).run(&mut machine, &mut oltp);
        println!(
            "{:>4}x{:<1} {:>8} {:>12.4} {:>12.2} {:>14.0} {:>12}",
            side,
            side,
            side * side,
            report.efficiency,
            report.ops_per_request,
            report.latency_ns.mean(),
            report.kind_counts[2]
        );
    }
    println!();
    println!("Index probes stay cheap (served from the big snooping caches), while the");
    println!("invalidation broadcast of each shared write grows with the grid side n —");
    println!("the scaling cost the paper quantifies in Figure 3.");
}
