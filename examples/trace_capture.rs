//! Dumps deterministic JSONL traces for fixed-seed runs — used to verify
//! that optimization PRs leave protocol behavior byte-identical.
//!
//! ```text
//! cargo run --release --example trace_capture -- /tmp/traces
//! ```

use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

use multicube::trace::{TraceFormat, TraceSink};
use multicube::{Machine, MachineConfig, Request, SyntheticSpec};
use multicube_mem::LineAddr;
use multicube_topology::NodeId;

fn sink_to(path: &Path) -> TraceSink {
    let f = BufWriter::new(File::create(path).expect("create trace file"));
    TraceSink::writer(Box::new(f), TraceFormat::Jsonl)
}

/// Serial traffic: one outstanding transaction at a time, mixed kinds.
fn serial(dir: &Path, seed: u64) {
    let mut m = Machine::new(MachineConfig::grid(4).unwrap(), seed).unwrap();
    m.set_trace_sink(sink_to(&dir.join(format!("serial_{seed}.jsonl"))));
    for i in 0..600u64 {
        let node = NodeId::new((i % 16) as u32);
        let line = LineAddr::new(i % 48);
        let req = match i % 5 {
            0 => Request::write(line),
            1 => Request::allocate(line),
            2 => Request::test_and_set(line),
            3 => Request::writeback(line),
            _ => Request::read(line),
        };
        if m.submit(node, req).is_ok() {
            m.advance();
        }
    }
    m.run_to_quiescence();
    m.check_coherence().expect("coherent");
}

/// Concurrent traffic: every node loaded at once, then the closed-loop
/// synthetic workload on a second machine.
fn concurrent(dir: &Path, seed: u64) {
    let mut m = Machine::new(MachineConfig::grid(4).unwrap(), seed).unwrap();
    m.set_trace_sink(sink_to(&dir.join(format!("concurrent_{seed}.jsonl"))));
    for round in 0..12u64 {
        for n in 0..16u32 {
            let line = LineAddr::new((round * 7 + u64::from(n) * 3) % 40);
            let req = if (round + u64::from(n)) % 3 == 0 {
                Request::write(line)
            } else {
                Request::read(line)
            };
            let _ = m.submit(NodeId::new(n), req);
        }
        m.run_to_quiescence();
    }
    m.check_coherence().expect("coherent");

    let mut m = Machine::new(MachineConfig::grid(4).unwrap(), seed).unwrap();
    m.set_trace_sink(sink_to(&dir.join(format!("synthetic_{seed}.jsonl"))));
    m.run_synthetic(&SyntheticSpec::default(), 25);
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_capture_out".to_string());
    let dir = Path::new(&dir);
    std::fs::create_dir_all(dir).expect("create output dir");
    for seed in [1u64, 42] {
        serial(dir, seed);
        concurrent(dir, seed);
    }
    eprintln!("trace_capture: wrote traces to {}", dir.display());
}
