//! Capacity planning with the analytical model: how big a Multicube can
//! you build before efficiency drops below a target?
//!
//! Uses the mean-value model (instant) to sweep grid sizes and request
//! rates, cross-checks one operating point against the discrete-event
//! machine, and contrasts with the single-bus multi.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use multicube_suite::baseline::SingleBusMulti;
use multicube_suite::machine::{Machine, MachineConfig, SyntheticSpec};
use multicube_suite::mva::{solve, ModelParams};

fn main() {
    let target = 0.90;
    let rate = 25.0; // the paper's design point: 25 requests/ms/processor

    println!("Model sweep at {rate} req/ms/processor (target efficiency {target}):");
    println!(
        "{:>6} {:>8} {:>12} {:>10} {:>10}",
        "n", "procs", "efficiency", "rho row", "rho col"
    );
    let mut biggest = 0u32;
    for n in [8u32, 12, 16, 20, 24, 28, 32, 40, 48] {
        let s = solve(&ModelParams::figure2(n), rate);
        if s.efficiency >= target {
            biggest = n;
        }
        println!(
            "{:>6} {:>8} {:>12.4} {:>10.4} {:>10.4}",
            n,
            n * n,
            s.efficiency,
            s.rho_row,
            s.rho_col
        );
    }
    println!();
    println!(
        "Largest grid meeting the target: {biggest}x{biggest} = {} processors",
        biggest * biggest
    );

    // Cross-check one model point against the machine simulator.
    let check_n = 16u32;
    let model = solve(&ModelParams::figure2(check_n), rate);
    let spec = SyntheticSpec::default().with_request_rate_per_ms(rate);
    let mut machine = Machine::new(MachineConfig::grid(check_n).unwrap(), 11).unwrap();
    let sim = machine.run_synthetic(&spec, 60);
    println!();
    println!(
        "Cross-check at n={check_n}: model efficiency {:.4}, simulated {:.4}",
        model.efficiency, sim.efficiency
    );

    // And what a single bus would do with the same processors.
    let procs = check_n * check_n;
    let mut multi = SingleBusMulti::new(procs, 11);
    let multi_report = multi.run_synthetic(&spec, 60);
    println!(
        "A single-bus multi with {procs} processors at the same rate: efficiency {:.4} (bus {:.0}% busy)",
        multi_report.efficiency,
        multi_report.bus_utilization * 100.0
    );
}
