//! Quickstart: build a Wisconsin Multicube, move a cache line around the
//! grid, and run a short synthetic workload.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use multicube_suite::machine::{Machine, MachineConfig, Request, SyntheticSpec};
use multicube_suite::mem::LineAddr;
use multicube_suite::topology::NodeId;

fn main() {
    // An 8x8 grid (64 processors) with the paper's timing: 50 ns bus
    // words, 16-word blocks, 750 ns snooping-cache and memory latency.
    let config = MachineConfig::grid(8).expect("valid grid");
    let mut machine = Machine::new(config, 2024).expect("valid config");

    // --- Single transactions -------------------------------------------
    let writer = NodeId::new(0); //  top-left corner
    let reader = NodeId::new(63); // bottom-right corner
    let line = LineAddr::new(100);

    machine.submit(writer, Request::write(line)).unwrap();
    let w = machine.advance().unwrap();
    println!(
        "write  by {:>3}: latency {:>6} ns (READ-MOD with invalidation broadcast)",
        w.node.to_string(),
        w.latency.as_nanos()
    );

    machine.submit(reader, Request::read(line)).unwrap();
    let r = machine.advance().unwrap();
    println!(
        "read   by {:>3}: latency {:>6} ns (cache-to-cache across two buses)",
        r.node.to_string(),
        r.latency.as_nanos()
    );

    machine.run_to_quiescence();
    machine.check_coherence().expect("machine is coherent");
    println!("coherence check: ok");

    // --- A synthetic run -------------------------------------------------
    // 10 blocking bus requests per millisecond per processor, the Figure 2
    // probability mix (80% unmodified targets, 20% invalidating writes).
    let spec = SyntheticSpec::default().with_request_rate_per_ms(10.0);
    let mut machine = Machine::new(MachineConfig::grid(8).unwrap(), 7).unwrap();
    let report = machine.run_synthetic(&spec, 100);

    println!();
    println!("synthetic run: 64 processors x 100 requests @ 10 req/ms");
    println!("  efficiency            {:>8.4}", report.efficiency);
    println!("  mean latency          {:>8.0} ns", report.mean_latency_ns);
    println!(
        "  row bus utilization   {:>8.4}",
        report.utilization.row_mean
    );
    println!(
        "  col bus utilization   {:>8.4}",
        report.utilization.col_mean
    );
    println!(
        "  bus ops / transaction {:>8.2}",
        report.ops_per_transaction()
    );
    println!(
        "  invalidations         {:>8}",
        report.metrics.invalidations.get()
    );
}
