//! Synchronization on the Multicube (§4): remote test-and-set spinning vs
//! the distributed queue lock, plus barrier episodes.
//!
//! Reproduces the section's claim that queueing "collapses bus traffic to
//! a very low level" while spinning traffic grows with contention.
//!
//! ```text
//! cargo run --release --example locks
//! ```

use multicube_suite::machine::{Machine, MachineConfig};
use multicube_suite::sync::{Barrier, LockExperiment, QueueLock, SpinLock};

fn main() {
    println!("Hot lock: every processor performs 4 critical sections (20 us each)");
    println!(
        "{:>6} {:>8} {:>18} {:>18} {:>14}",
        "grid", "procs", "spin ops/acq", "queue ops/acq", "queue fails"
    );
    for side in [2u32, 4, 8] {
        let exp = LockExperiment::new(4).with_hold_ns(20_000);
        let mut m1 = Machine::new(MachineConfig::grid(side).unwrap(), 3).unwrap();
        let spin = exp.run::<SpinLock>(&mut m1);
        let mut m2 = Machine::new(MachineConfig::grid(side).unwrap(), 3).unwrap();
        let queue = exp.run::<QueueLock>(&mut m2);
        assert_eq!(spin.acquisitions, queue.acquisitions);
        println!(
            "{:>4}x{:<1} {:>8} {:>18.1} {:>18.1} {:>14}",
            side,
            side,
            side * side,
            spin.ops_per_acquisition(),
            queue.ops_per_acquisition(),
            queue.tas_failures,
        );
    }

    println!();
    println!("Barrier: flag-chain arrivals, invalidation-based local spinning");
    println!(
        "{:>6} {:>8} {:>14} {:>20}",
        "grid", "procs", "ops/episode", "ops/node/episode"
    );
    for side in [2u32, 4] {
        let mut m = Machine::new(MachineConfig::grid(side).unwrap(), 5).unwrap();
        let report = Barrier::new(5).run(&mut m);
        println!(
            "{:>4}x{:<1} {:>8} {:>14.1} {:>20.2}",
            side,
            side,
            report.nodes,
            report.ops_per_episode(),
            report.ops_per_node_episode()
        );
    }
    println!();
    println!("Spinning traffic explodes with contention; the queue lock's cost per");
    println!("acquisition stays constant, and barrier waiting costs no bus traffic.");
}
