//! Trace capture and replay: record a database run, archive it as bytes,
//! and replay the identical request stream under different machine
//! configurations — a controlled experiment the paper's authors could not
//! run for lack of published reference traces.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use multicube_suite::machine::{Machine, MachineConfig};
use multicube_suite::workload::{Oltp, Trace, WorkloadRunner};

fn main() {
    // Record a 4x4 OLTP run.
    let mut machine = Machine::new(MachineConfig::grid(4).unwrap(), 7).unwrap();
    let mut recorder = Trace::recording(Oltp::new(64));
    let original = WorkloadRunner::new(100).run(&mut machine, &mut recorder);
    let trace = recorder.into_trace();
    let bytes = trace.to_bytes().expect("fits the v1 u32 record count");
    println!(
        "recorded {} requests ({} bytes serialized); original run: efficiency {:.4}, {:.2} ops/request",
        trace.len(),
        bytes.len(),
        original.efficiency,
        original.ops_per_request
    );

    // Replay the very same reference stream under different block sizes —
    // the Figure 4 experiment, but on a real (recorded) workload instead
    // of the statistical model.
    let restored = Trace::from_bytes(&bytes).expect("valid trace");
    println!();
    println!(
        "{:>12} {:>12} {:>14} {:>14}",
        "block words", "efficiency", "ops/request", "mean lat (ns)"
    );
    for block in [4u32, 16, 64] {
        let config = MachineConfig::grid(4).unwrap().with_block_words(block);
        let mut m = Machine::new(config, 7).unwrap();
        let report = WorkloadRunner::new(100).run(&mut m, &mut restored.player());
        println!(
            "{:>12} {:>12.4} {:>14.2} {:>14.0}",
            block,
            report.efficiency,
            report.ops_per_request,
            report.latency_ns.mean()
        );
    }
    println!();
    println!("Same references, different hardware: big blocks pay longer bus holds");
    println!("on every transfer — the Figure 4 trade-off on a concrete workload.");
}
