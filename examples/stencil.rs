//! A phased numerical kernel (stencil) — the paper's "host of numerical
//! methods" domain: long private compute phases punctuated by boundary
//! exchange with grid neighbours.
//!
//! Shows where the traffic goes: private phases run out of the big
//! snooping caches (near-zero bus ops), while each boundary exchange costs
//! a handful of short transactions.
//!
//! ```text
//! cargo run --release --example stencil
//! ```

use multicube_suite::machine::{Machine, MachineConfig};
use multicube_suite::workload::{PhasedNumeric, WorkloadRunner};

fn main() {
    println!("Stencil phases on a 4x4 machine, varying the compute:exchange ratio");
    println!(
        "{:>12} {:>12} {:>14} {:>16} {:>14}",
        "phase len", "efficiency", "ops/request", "remote-mod reads", "invalidations"
    );
    for phase_len in [2u8, 8, 32] {
        let config = MachineConfig::grid(4).expect("valid grid");
        let mut machine = Machine::new(config, 99).expect("valid config");
        let mut stencil = PhasedNumeric::new(4, phase_len);
        let report = WorkloadRunner::new(200).run(&mut machine, &mut stencil);
        println!(
            "{:>12} {:>12.4} {:>14.3} {:>16} {:>14}",
            phase_len,
            report.efficiency,
            report.ops_per_request,
            machine.metrics().read_modified.count,
            machine.metrics().invalidations.get()
        );
    }
    println!();
    println!("Longer private phases amortize the boundary exchanges: bus ops per");
    println!("request fall as the computation-to-communication ratio grows.");
}
