//! # The Wisconsin Multicube, reproduced
//!
//! This umbrella crate re-exports the whole workspace reproducing
//!
//! > J. R. Goodman and P. J. Woest, *The Wisconsin Multicube: A New
//! > Large-Scale Cache-Coherent Multiprocessor*, ISCA 1988.
//!
//! The paper proposes a shared-memory multiprocessor built from a grid of
//! buses: `N = n²` processors, each snooping one row bus and one column
//! bus through a very large "snooping cache", with main memory interleaved
//! across the columns and coherence maintained by a write-back
//! invalidation protocol extended from single-bus snooping (the machine
//! was never built; its evaluation was analytical).
//!
//! The workspace contains:
//!
//! * [`machine`] — the event-driven machine simulator with the
//!   complete Appendix-A protocol,
//! * [`topology`] — the general `N = n^k` Multicube topology and the §6
//!   scaling formulas,
//! * [`mem`] — the cache, modified-line-table and memory-bank substrates,
//! * [`sync`] — the §4 synchronization primitives (remote test-and-set,
//!   distributed queue lock, barrier),
//! * [`workload`] — application-flavoured request generators,
//! * [`mva`] — the analytical mean-value model behind Figures 2–4,
//! * [`baseline`] — the single-bus multi with write-once coherence,
//! * `multicube-bench` — the harness regenerating every figure and table
//!   (`cargo run --release -p multicube-bench --bin figures -- all`).
//!
//! # Quick start
//!
//! ```
//! use multicube_suite::machine::{Machine, MachineConfig, Request};
//! use multicube_suite::mem::LineAddr;
//! use multicube_suite::topology::NodeId;
//!
//! // A 4x4 Wisconsin Multicube with the paper's timing parameters.
//! let mut m = Machine::new(MachineConfig::grid(4).unwrap(), 42).unwrap();
//!
//! // One processor writes a line; a processor in the opposite corner
//! // reads it back through the grid-of-buses protocol.
//! m.submit(NodeId::new(0), Request::write(LineAddr::new(7))).unwrap();
//! m.advance().unwrap();
//! m.submit(NodeId::new(15), Request::read(LineAddr::new(7))).unwrap();
//! let done = m.advance().unwrap();
//! assert!(done.success);
//! m.run_to_quiescence();
//! m.check_coherence().unwrap();
//! ```

/// The machine simulator and coherence protocol (crate `multicube`).
pub mod machine {
    pub use multicube::*;
}

/// Simulation kernel (crate `multicube-sim`).
pub mod sim {
    pub use multicube_sim::*;
}

/// Multicube topology (crate `multicube-topology`).
pub mod topology {
    pub use multicube_topology::*;
}

/// Memory-hierarchy structures (crate `multicube-mem`).
pub mod mem {
    pub use multicube_mem::*;
}

/// Synchronization primitives (crate `multicube-sync`).
pub mod sync {
    pub use multicube_sync::*;
}

/// Application workloads (crate `multicube-workload`).
pub mod workload {
    pub use multicube_workload::*;
}

/// The analytical mean-value model (crate `multicube-mva`).
pub mod mva {
    pub use multicube_mva::*;
}

/// The single-bus multi baseline (crate `multicube-baseline`).
pub mod baseline {
    pub use multicube_baseline::*;
}
